package client

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"apollo/internal/core"
	"apollo/internal/features"
	"apollo/internal/looptrace"
	"apollo/internal/tuner"
)

// Source adapts a Client into a tuner.ModelSource: it fetches named
// policy/chunk models from the service, builds projectors onto the
// application's feature schema, and atomically swaps a new projector set
// in whenever the service publishes a new version — the running tuner
// picks up the retrained model at its next launch, with no restart and
// no locking on the launch path. When the service has never been
// reachable, the source stays empty and the tuner runs on its base
// parameters (graceful degradation). Behind a *FleetClient the same
// degradation path gains failover: a refresh that would have served a
// stale copy from a dead replica is answered by the next ring member.
type Source struct {
	c          Service
	schema     *features.Schema
	policyName string // "" = no policy model
	chunkName  string // "" = no chunk model

	ps atomic.Pointer[tuner.Projectors]

	mu         sync.Mutex //apollo:lockrank 13
	policyVer  int
	policyHash string
	chunkVer   int
	chunkHash  string
	lastErr    error
	swaps      uint64
	stopPoll   func()
	trace      *looptrace.Tracer
}

// NewSource returns a source reading policyName and/or chunkName (either
// may be empty) through c — a single-replica *Client or a ring-routed
// *FleetClient — projecting onto schema. Call Refresh (or StartPolling)
// to populate it; until then the tuner sees an empty set.
func NewSource(c Service, schema *features.Schema, policyName, chunkName string) *Source {
	s := &Source{c: c, schema: schema, policyName: policyName, chunkName: chunkName}
	s.ps.Store(&tuner.Projectors{})
	return s
}

// Projectors returns the current set. Lock-free; called per launch.
func (s *Source) Projectors() *tuner.Projectors { return s.ps.Load() }

// SetTrace routes a client-swap loop event through tr every time the
// source hot-swaps to a new model version, correlated (via the fetched
// envelope's lineage block) with the retrain cycle that published it.
// A nil tracer disables emission; call before StartPolling.
func (s *Source) SetTrace(tr *looptrace.Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.trace = tr
}

// Swaps returns how many times a new model version has been swapped in.
func (s *Source) Swaps() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.swaps
}

// Err returns the most recent refresh error, nil after a clean refresh.
func (s *Source) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

// Refresh fetches both models (subject to the client's backoff) and, if
// either version changed, publishes a rebuilt projector set. It returns
// an error only when a wanted model has never been fetched at all —
// serving a stale model during an outage is success, not failure.
func (s *Source) Refresh() error {
	var errs []error
	var policy, chunk *Cached
	if s.policyName != "" {
		c, err := s.c.Fetch(s.policyName)
		if err != nil {
			errs = append(errs, err)
		} else if c.Model.Param != core.ExecutionPolicy {
			errs = append(errs, fmt.Errorf("client: model %s predicts %v, want execution_policy",
				s.policyName, c.Model.Param))
		} else {
			policy = c
		}
	}
	if s.chunkName != "" {
		c, err := s.c.Fetch(s.chunkName)
		if err != nil {
			errs = append(errs, err)
		} else if c.Model.Param != core.ChunkSize {
			errs = append(errs, fmt.Errorf("client: model %s predicts %v, want chunk_size",
				s.chunkName, c.Model.Param))
		} else {
			chunk = c
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastErr = errors.Join(errs...)
	// Swap only on change: projector construction is off the hot path but
	// not free, and an unchanged set must keep its warmed buffer pools.
	changed := false
	if policy != nil && (policy.Version != s.policyVer || policy.SchemaHash != s.policyHash) {
		s.policyVer, s.policyHash = policy.Version, policy.SchemaHash
		s.emitSwapLocked(policy)
		changed = true
	}
	if chunk != nil && (chunk.Version != s.chunkVer || chunk.SchemaHash != s.chunkHash) {
		s.chunkVer, s.chunkHash = chunk.Version, chunk.SchemaHash
		s.emitSwapLocked(chunk)
		changed = true
	}
	if changed {
		next := &tuner.Projectors{}
		cur := s.ps.Load()
		if policy != nil {
			next.Policy = policy.Model.NewProjector(s.schema)
		} else {
			next.Policy = cur.Policy
		}
		if chunk != nil {
			next.Chunk = chunk.Model.NewProjector(s.schema)
		} else {
			next.Chunk = cur.Chunk
		}
		s.ps.Store(next)
		s.swaps++
	}
	return s.lastErr
}

// emitSwapLocked records one client-swap loop event for a model the
// source is about to switch to. Emit itself is lock-free, so holding
// s.mu here costs nothing; the lineage block (when present) supplies
// the loop ID and parent version that tie the swap to its retrain
// cycle.
func (s *Source) emitSwapLocked(c *Cached) {
	if s.trace == nil {
		return
	}
	f := looptrace.Fields{Version: int32(c.Version)}
	loop := ""
	if c.Lineage != nil {
		loop = c.Lineage.LoopID
		f.Parent = int32(c.Lineage.ParentVersion)
	}
	s.trace.Emit(looptrace.KindClientSwap, c.Name, loop, f)
}

// StartPolling refreshes the source every interval on a background
// goroutine until the returned stop function is called. Refresh errors
// are retained in Err; the poll keeps going (the next retrain must not
// be lost to one outage).
func (s *Source) StartPolling(interval time.Duration) (stop func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopPoll != nil {
		return s.stopPoll
	}
	stopCh := make(chan struct{})
	doneCh := make(chan struct{})
	go func() {
		defer close(doneCh)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stopCh:
				return
			case <-t.C:
				s.Refresh() //apollo:errok Refresh records its failure in lastErr, surfaced via Err()
			}
		}
	}()
	var once sync.Once
	s.stopPoll = func() {
		once.Do(func() { close(stopCh) })
		<-doneCh
	}
	return s.stopPoll
}
