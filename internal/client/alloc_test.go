package client

import (
	"testing"

	"apollo/internal/features"
)

// Predict is //apollo:hotpath: once a model is cached, every launch
// decision — including one for a vector the client has never seen, the
// old memo's worst case — must cost zero allocations: one atomic map
// load plus the compiled tree walk installed at fetch time.
func TestPredictCacheMissAllocationFree(t *testing.T) {
	ts, _ := newService(t)
	c := New(ts.URL, Options{})
	m := testModel(t, false)
	if _, err := c.Push("p", m); err != nil {
		t.Fatal(err)
	}
	ni := m.Schema.Index(features.NumIndices)
	x := make([]float64, m.Schema.Len())
	if _, err := c.Predict("p", x); err != nil {
		t.Fatal(err)
	}
	if cur := c.Cached("p"); cur == nil || cur.Compiled == nil {
		t.Fatal("fetched model was not compiled")
	}
	i := 0.0
	allocs := testing.AllocsPerRun(200, func() {
		i++
		x[ni] = i // a fresh vector every call: no memo could have seen it
		if _, err := c.Predict("p", x); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("cache-miss Predict allocates %.1f objects per call, want 0", allocs)
	}
}

// PredictN shares the contract: one batched decision pass, zero allocs.
func TestPredictNAllocationFree(t *testing.T) {
	ts, _ := newService(t)
	c := New(ts.URL, Options{})
	m := testModel(t, false)
	if _, err := c.Push("p", m); err != nil {
		t.Fatal(err)
	}
	ni := m.Schema.Index(features.NumIndices)
	X := make([][]float64, 16)
	for i := range X {
		X[i] = make([]float64, m.Schema.Len())
		X[i][ni] = float64(i * 1000)
	}
	out := make([]int, len(X))
	if err := c.PredictN("p", X, out); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := c.PredictN("p", X, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("PredictN allocates %.1f objects per call, want 0", allocs)
	}
}
