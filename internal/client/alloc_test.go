package client

import (
	"testing"

	"apollo/internal/features"
)

// Predict is //apollo:hotpath: once a model is cached and a vector's
// decision has been promoted into the published memo, a launch decision
// must cost zero allocations (pooled key buffer, one atomic map load).
func TestPredictMemoHitAllocationFree(t *testing.T) {
	ts, _ := newService(t)
	c := New(ts.URL, Options{})
	m := testModel(t, false)
	if _, err := c.Push("p", m); err != nil {
		t.Fatal(err)
	}
	ni := m.Schema.Index(features.NumIndices)
	x := make([]float64, m.Schema.Len())
	x[ni] = 32
	// Drive memoPromoteBatch distinct vectors through Predict so the
	// dirty overlay (x included) republishes into the lock-free map.
	for i := 0; i < memoPromoteBatch; i++ {
		v := make([]float64, m.Schema.Len())
		v[ni] = float64(32 + i)
		if _, err := c.Predict("p", v); err != nil {
			t.Fatal(err)
		}
	}
	hits := c.MemoHits()
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := c.Predict("p", x); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("memoized Predict allocates %.1f objects per call, want 0", allocs)
	}
	if c.MemoHits() <= hits {
		t.Error("guard did not exercise the memo hit path")
	}
}
