package client

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"apollo/internal/caliper"
	"apollo/internal/core"
	"apollo/internal/dataset"
	"apollo/internal/features"
	"apollo/internal/raja"
	"apollo/internal/registry"
	"apollo/internal/server"
	"apollo/internal/tuner"
)

// testModel trains a small policy model. With parallelWins the parallel
// variant is fastest everywhere; otherwise the usual crossover emerges.
func testModel(t testing.TB, parallelWins bool) *core.Model {
	t.Helper()
	schema := features.TableI()
	frame := dataset.NewFrame(core.RecordColumns(schema)...)
	ni := schema.Index(features.NumIndices)
	for _, n := range []int{32, 256, 2048, 16384, 131072} {
		for _, pol := range []raja.Policy{raja.SeqExec, raja.OmpParallelForExec} {
			row := make([]float64, schema.Len()+3)
			row[ni] = float64(n)
			row[schema.Len()] = float64(pol)
			seqNS, ompNS := float64(n)*10, 8000+float64(n)*10/8
			if parallelWins {
				seqNS, ompNS = float64(n)*100, float64(n)
			}
			if pol == raja.SeqExec {
				row[schema.Len()+2] = seqNS
			} else {
				row[schema.Len()+2] = ompNS
			}
			frame.AddRow(row)
		}
	}
	set, err := core.Label(frame, schema, core.ExecutionPolicy)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Train(set, core.TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newService(t *testing.T) (*httptest.Server, *registry.Registry) {
	t.Helper()
	reg := registry.New()
	ts := httptest.NewServer(server.New(reg).Handler())
	t.Cleanup(ts.Close)
	return ts, reg
}

func TestPushFetchConditionalGet(t *testing.T) {
	ts, _ := newService(t)
	c := New(ts.URL, Options{})
	m := testModel(t, false)
	v, err := c.Push("lulesh/policy", m)
	if err != nil || v != 1 {
		t.Fatalf("push: v=%d err=%v", v, err)
	}

	got, err := c.Fetch("lulesh/policy")
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 1 || got.SchemaHash != m.SchemaHash() {
		t.Errorf("fetched %+v", got)
	}
	fetches := c.Fetches()

	// Re-fetch revalidates with If-None-Match: same object back, one more
	// round trip, but no re-decode (304 path returns the cached pointer).
	again, err := c.Fetch("lulesh/policy")
	if err != nil {
		t.Fatal(err)
	}
	if again != got {
		t.Error("304 revalidation rebuilt the cached model")
	}
	if c.Fetches() != fetches+1 {
		t.Errorf("fetches = %d, want %d", c.Fetches(), fetches+1)
	}

	// A republish is picked up on the next fetch.
	if _, err := c.Push("lulesh/policy", testModel(t, true)); err != nil {
		t.Fatal(err)
	}
	next, err := c.Fetch("lulesh/policy")
	if err != nil {
		t.Fatal(err)
	}
	if next.Version != 2 || next == again {
		t.Errorf("after republish got version %d (same=%v), want 2, new object", next.Version, next == again)
	}
}

func TestPredictUsesCompiledModel(t *testing.T) {
	ts, _ := newService(t)
	c := New(ts.URL, Options{})
	m := testModel(t, false)
	if _, err := c.Push("p", m); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, m.Schema.Len())
	x[m.Schema.Index(features.NumIndices)] = 32
	class, err := c.Predict("p", x)
	if err != nil {
		t.Fatal(err)
	}
	if class != int(raja.SeqExec) {
		t.Errorf("class = %d, want seq", class)
	}
	// The fetch installed a compiled tree and every prediction agrees
	// with the interpreted walk.
	cur := c.Cached("p")
	if cur == nil || cur.Compiled == nil || cur.predict == nil {
		t.Fatal("fetched model was not compiled and specialized")
	}
	ni := m.Schema.Index(features.NumIndices)
	for i := 0; i < 64; i++ {
		x[ni] = float64(i * 997)
		got, err := c.Predict("p", x)
		if err != nil {
			t.Fatal(err)
		}
		if want := m.Predict(x); got != want {
			t.Fatalf("vector %d: compiled predict %d, interpreted %d", i, got, want)
		}
	}
	// Wrong-length vectors are rejected.
	if _, err := c.Predict("p", []float64{1}); err == nil {
		t.Error("short vector accepted")
	}
}

func TestPredictNMatchesPredict(t *testing.T) {
	ts, _ := newService(t)
	c := New(ts.URL, Options{})
	m := testModel(t, false)
	if _, err := c.Push("p", m); err != nil {
		t.Fatal(err)
	}
	ni := m.Schema.Index(features.NumIndices)
	X := make([][]float64, 32)
	for i := range X {
		X[i] = make([]float64, m.Schema.Len())
		X[i][ni] = float64(i * 513)
	}
	out := make([]int, len(X))
	if err := c.PredictN("p", X, out); err != nil {
		t.Fatal(err)
	}
	for i, x := range X {
		want, err := c.Predict("p", x)
		if err != nil {
			t.Fatal(err)
		}
		if out[i] != want {
			t.Errorf("batch[%d] = %d, Predict = %d", i, out[i], want)
		}
	}
	// A wrong-length vector anywhere in the batch rejects the call.
	X[7] = []float64{1}
	if err := c.PredictN("p", X, out); err == nil {
		t.Error("short vector in batch accepted")
	}
}

// TestDegradesToBaseParamsWhenUnreachable is the acceptance criterion:
// with the service down, a tuner driven through the client source must
// keep launching on base parameters — no panic, no launch failure — and
// the retry traffic must be bounded by the exponential backoff.
func TestDegradesToBaseParamsWhenUnreachable(t *testing.T) {
	c := New("http://127.0.0.1:1", Options{ // nothing listens on port 1
		HTTPClient:     &http.Client{Timeout: 200 * time.Millisecond},
		InitialBackoff: time.Hour,
	})
	c.rand = func() float64 { return 1 } // pin jitter: full 1h window
	schema := features.TableI()
	src := NewSource(c, schema, "lulesh/policy", "")
	if err := src.Refresh(); err == nil {
		t.Fatal("refresh against a dead server reported success")
	}

	base := raja.Params{Policy: raja.OmpParallelForExec, Chunk: 64}
	tn := tuner.NewTuner(schema, caliper.New(), base).UseSource(src)
	k := raja.NewKernel("degraded", nil)
	for i := 0; i < 10; i++ {
		p, ok := tn.Begin(k, raja.NewRange(0, 100))
		if !ok || p != base {
			t.Fatalf("degraded launch %d got %+v, want base %+v", i, p, base)
		}
	}

	// Backoff bounds retries: the failure armed a 1h backoff, so more
	// refreshes must not touch the network again.
	n := c.Fetches()
	for i := 0; i < 20; i++ {
		src.Refresh()
	}
	if c.Fetches() != n {
		t.Errorf("backoff violated: %d extra network attempts", c.Fetches()-n)
	}
	if src.Err() == nil {
		t.Error("backoff refresh lost the error")
	}
}

func TestBackoffExpiresAndRecovers(t *testing.T) {
	ts, _ := newService(t)
	c := New(ts.URL, Options{InitialBackoff: 50 * time.Millisecond})
	c.rand = func() float64 { return 1 } // pin jitter: deterministic windows
	now := time.Now()
	var mu sync.Mutex
	c.nowFn = func() time.Time { mu.Lock(); defer mu.Unlock(); return now }

	// Unknown model: 404 arms the backoff.
	if _, err := c.Fetch("late/policy"); err == nil {
		t.Fatal("fetch of unpublished model succeeded")
	}
	n := c.Fetches()
	if _, err := c.Fetch("late/policy"); err == nil || c.Fetches() != n {
		t.Fatal("fetch inside backoff window touched the network")
	}

	// The model appears; once the backoff window passes, fetch recovers.
	if _, err := c.Push("late/policy", testModel(t, false)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	now = now.Add(time.Second)
	mu.Unlock()
	got, err := c.Fetch("late/policy")
	if err != nil || got == nil {
		t.Fatalf("fetch after backoff expiry failed: %v", err)
	}
}

func TestStaleModelServedDuringOutage(t *testing.T) {
	reg := registry.New()
	ts := httptest.NewServer(server.New(reg).Handler())
	c := New(ts.URL, Options{InitialBackoff: time.Hour})
	if _, err := c.Push("p", testModel(t, false)); err != nil {
		t.Fatal(err)
	}
	before, err := c.Fetch("p")
	if err != nil {
		t.Fatal(err)
	}
	ts.Close() // the service dies
	after, err := c.Fetch("p")
	if err != nil || after != before {
		t.Errorf("outage fetch: got %p err=%v, want cached %p, nil", after, err, before)
	}
	// Decisions keep working off the stale model.
	x := make([]float64, before.Model.Schema.Len())
	if _, err := c.Predict("p", x); err != nil {
		t.Errorf("predict during outage: %v", err)
	}
}

func TestSourceHotSwapsProjectors(t *testing.T) {
	ts, _ := newService(t)
	c := New(ts.URL, Options{})
	schema := features.TableI()
	if _, err := c.Push("app/policy", testModel(t, false)); err != nil {
		t.Fatal(err)
	}
	src := NewSource(c, schema, "app/policy", "")
	if err := src.Refresh(); err != nil {
		t.Fatal(err)
	}
	tn := tuner.NewTuner(schema, caliper.New(), raja.Params{Policy: raja.OmpParallelForExec}).UseSource(src)
	k := raja.NewKernel("swap", nil)
	small := raja.NewRange(0, 32)
	if p, _ := tn.Begin(k, small); p.Policy != raja.SeqExec {
		t.Fatalf("v1 model: small launch got %v, want seq", p.Policy)
	}

	// Retrained model: parallel wins everywhere. Push + refresh swaps it
	// into the running tuner.
	if _, err := c.Push("app/policy", testModel(t, true)); err != nil {
		t.Fatal(err)
	}
	if err := src.Refresh(); err != nil {
		t.Fatal(err)
	}
	if p, _ := tn.Begin(k, small); p.Policy != raja.OmpParallelForExec {
		t.Fatalf("v2 model: small launch got %v, want omp", p.Policy)
	}
	if src.Swaps() != 2 {
		t.Errorf("swaps = %d, want 2", src.Swaps())
	}

	// An unchanged model must not swap (projector pools stay warm).
	if err := src.Refresh(); err != nil {
		t.Fatal(err)
	}
	if src.Swaps() != 2 {
		t.Errorf("no-op refresh swapped: %d", src.Swaps())
	}
}

func TestSourceRejectsWrongParameterModel(t *testing.T) {
	ts, _ := newService(t)
	c := New(ts.URL, Options{})
	if _, err := c.Push("p", testModel(t, false)); err != nil {
		t.Fatal(err)
	}
	src := NewSource(c, features.TableI(), "", "p") // policy model wired as chunk
	if err := src.Refresh(); err == nil {
		t.Error("wrong-parameter model accepted")
	}
	if ps := src.Projectors(); ps.Chunk != nil {
		t.Error("wrong-parameter model installed")
	}
}

func TestSourcePollingPicksUpNewVersion(t *testing.T) {
	ts, _ := newService(t)
	c := New(ts.URL, Options{})
	schema := features.TableI()
	if _, err := c.Push("poll/policy", testModel(t, false)); err != nil {
		t.Fatal(err)
	}
	src := NewSource(c, schema, "poll/policy", "")
	stop := src.StartPolling(5 * time.Millisecond)
	defer stop()

	deadline := time.Now().Add(5 * time.Second)
	for src.Swaps() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if src.Swaps() == 0 {
		t.Fatal("poller never installed v1")
	}
	if _, err := c.Push("poll/policy", testModel(t, true)); err != nil {
		t.Fatal(err)
	}
	for src.Swaps() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if src.Swaps() < 2 {
		t.Fatal("poller never picked up v2")
	}
	stop()
	stop() // idempotent
}

// benchClient stands up a service with one pushed model and a warmed
// client, returning the client and a mutable probe vector.
func benchClient(b *testing.B) (*Client, []float64, int) {
	reg := registry.New()
	ts := httptest.NewServer(server.New(reg).Handler())
	b.Cleanup(ts.Close)
	c := New(ts.URL, Options{})
	m := testModel(b, false)
	if _, err := c.Push("bench/policy", m); err != nil {
		b.Fatal(err)
	}
	x := make([]float64, m.Schema.Len())
	ni := m.Schema.Index(features.NumIndices)
	x[ni] = 4096
	if _, err := c.Predict("bench/policy", x); err != nil {
		b.Fatal(err)
	}
	return c, x, ni
}

// BenchmarkClientCachedPredict measures a steady-state decision on a
// repeated vector: one atomic map load plus the compiled walk — no
// network, no interpreted tree, no memo.
func BenchmarkClientCachedPredict(b *testing.B) {
	c, x, _ := benchClient(b)
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		class, err := c.Predict("bench/policy", x)
		if err != nil {
			b.Fatal(err)
		}
		sink += class
	}
	_ = sink
}

// BenchmarkClientCacheMissPredict drives a never-before-seen vector
// through every call — the case that used to pay the memo's map churn
// and an interpreted walk, and now costs the same compiled walk as a
// repeat (0 allocs; the acceptance bar is ≥3x over the old path).
func BenchmarkClientCacheMissPredict(b *testing.B) {
	c, x, ni := benchClient(b)
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		x[ni] = float64(i)
		class, err := c.Predict("bench/policy", x)
		if err != nil {
			b.Fatal(err)
		}
		sink += class
	}
	_ = sink
}

// BenchmarkClientPredictBatched amortizes one name resolution and one
// compiled walk over a vector of launches; ns/launch must come in under
// the single-predict cost.
func BenchmarkClientPredictBatched(b *testing.B) {
	c, x, ni := benchClient(b)
	const batch = 64
	X := make([][]float64, batch)
	for i := range X {
		v := make([]float64, len(x))
		copy(v, x)
		v[ni] = float64(i * 777)
		X[i] = v
	}
	out := make([]int, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.PredictN("bench/policy", X, out); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/launch")
}
