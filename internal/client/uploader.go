package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"apollo/internal/dataset"
	"apollo/internal/telemetry"
)

// PostTelemetry ships one batch to the service's POST /telemetry
// endpoint. It does not touch the model-fetch backoff state — telemetry
// is best-effort and must never delay a model refresh.
func (c *Client) PostTelemetry(b *telemetry.Batch) error {
	body, err := json.Marshal(b)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, c.base+"/telemetry", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	c.fetches.Add(1)
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: posting telemetry for %s: %w", b.Model, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20)) //apollo:errok best-effort error-body snippet; the status error is being built regardless
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: posting telemetry for %s: %s: %s",
			b.Model, resp.Status, bytes.TrimSpace(data))
	}
	return nil
}

// UploaderOptions tunes an Uploader; the zero value picks defaults.
type UploaderOptions struct {
	// MaxPending bounds the rows retained across failed uploads
	// (default 16384). When the service stays down past the bound, the
	// oldest pending rows are discarded first: fresh telemetry is worth
	// more to a drift detector than stale telemetry.
	MaxPending int
	// Attribution (optional) supplies the model version the client is
	// currently running and the loop ID of the retrain cycle that
	// published it (both zero when unknown). Flush stamps them onto
	// every batch, so the service can attribute ingested spools to the
	// producing model version and the loop tracer can close the
	// telemetry leg of the cycle.
	Attribution func() (version int, loopID string)
}

// Uploader moves sampled measurements from an in-process
// telemetry.Recorder to the model service in batches. Upload failures
// keep the drained rows pending (bounded) and arm the client's
// full-jitter backoff schedule so a down service is not hammered.
// Behind a *FleetClient each post already failed over across the ring
// before it counts as a failure here, so the backoff only arms when the
// whole fleet is unreachable.
type Uploader struct {
	c          Service
	model      string
	rec        *telemetry.Recorder
	max        int
	attributes func() (version int, loopID string)

	mu       sync.Mutex //apollo:lockrank 12
	pending  *dataset.Frame
	failures int
	nextTry  time.Time

	batches  atomic.Uint64 // batches accepted by the service
	rows     atomic.Uint64 // rows accepted by the service
	discards atomic.Uint64 // pending rows discarded to the bound
}

// NewUploader returns an uploader shipping rec's samples as model name
// through c (a *Client or a fleet-routed *FleetClient).
func NewUploader(c Service, model string, rec *telemetry.Recorder, opts UploaderOptions) *Uploader {
	if opts.MaxPending <= 0 {
		opts.MaxPending = 16384
	}
	return &Uploader{c: c, model: model, rec: rec, max: opts.MaxPending, attributes: opts.Attribution}
}

// Batches returns how many batches the service has accepted.
func (u *Uploader) Batches() uint64 { return u.batches.Load() }

// Rows returns how many sample rows the service has accepted.
func (u *Uploader) Rows() uint64 { return u.rows.Load() }

// Discarded returns how many pending rows were dropped to the
// MaxPending bound during an extended outage.
func (u *Uploader) Discarded() uint64 { return u.discards.Load() }

// Flush drains the recorder and attempts one upload of everything
// pending. Inside a backoff window it only drains (bounded) and returns
// nil without a network attempt; a failed attempt keeps the rows for the
// next flush and arms the backoff. The rows being posted are taken out
// of the pending frame before the network call, so u.mu is never held
// across I/O and concurrent flushes cannot double-send.
func (u *Uploader) Flush() error {
	u.mu.Lock()
	if f := u.rec.Drain(0); f != nil {
		if u.pending == nil {
			u.pending = f
		} else {
			u.pending.Append(f)
		}
	}
	u.boundPendingLocked()
	if u.pending == nil || u.pending.Len() == 0 || u.nextTry.After(u.c.now()) {
		u.mu.Unlock()
		return nil
	}
	sending := u.pending
	u.pending = nil
	u.mu.Unlock()

	b := telemetry.NewBatch(u.model, sending)
	if u.attributes != nil {
		b.SourceVersion, b.LoopID = u.attributes()
	}
	err := u.c.PostTelemetry(b)

	u.mu.Lock()
	defer u.mu.Unlock()
	if err != nil {
		// Put the rows back ahead of anything drained meanwhile.
		if u.pending != nil {
			sending.Append(u.pending)
		}
		u.pending = sending
		u.boundPendingLocked()
		u.nextTry = u.c.now().Add(u.c.backoff(u.failures))
		if u.failures < 30 {
			u.failures++
		}
		return err
	}
	u.batches.Add(1)
	u.rows.Add(uint64(sending.Len()))
	u.failures = 0
	u.nextTry = time.Time{}
	return nil
}

// boundPendingLocked discards the oldest pending rows past MaxPending.
func (u *Uploader) boundPendingLocked() {
	if u.pending == nil {
		return
	}
	if over := u.pending.Len() - u.max; over > 0 {
		idx := make([]int, u.max)
		for i := range idx {
			idx[i] = over + i
		}
		u.pending = u.pending.SelectRows(idx)
		u.discards.Add(uint64(over))
	}
}

// Start flushes every interval until ctx is done, then performs one
// final flush so shutdown does not strand buffered samples. It returns
// a done channel that closes when the loop exits.
func (u *Uploader) Start(ctx context.Context, interval time.Duration) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				u.Flush() //apollo:errok Flush requeues failed batches and counts terminal drops
				return
			case <-t.C:
				u.Flush() //apollo:errok Flush requeues failed batches and counts terminal drops
			}
		}
	}()
	return done
}
