package flight

import (
	"fmt"
	"sort"

	"apollo/internal/ctree"
	"apollo/internal/dtree"
)

// CaptureFormatID identifies the flight-capture JSON format.
const CaptureFormatID = "apollo-flight-v1"

// Capture is the JSON form of a recorder snapshot: the site table plus
// the retained records with human-readable decision-path explanations.
// It is what /debug/apollo/flight serves and apollo-inspect flight
// consumes.
type Capture struct {
	Format  string          `json:"format"`
	Emitted uint64          `json:"emitted"`
	Dropped uint64          `json:"dropped"`
	Sites   []CaptureSite   `json:"sites"`
	Records []CaptureRecord `json:"records"`
}

// CaptureSite is one registered decision site. Sites with a registered
// TrailDecoder embed the compiled-tree layout and feature mapping, so an
// offline consumer (apollo-inspect flight) can decode compact offset
// trails from the records without the original model.
type CaptureSite struct {
	ID       string        `json:"id"`
	Name     string        `json:"name"`
	Features []string      `json:"features,omitempty"`
	CTree    *ctree.Layout `json:"ctree,omitempty"`
	Src      []int32       `json:"src,omitempty"`
}

// CaptureRecord is one decision in a Capture.
type CaptureRecord struct {
	Seq         uint64             `json:"seq"`
	TimeNS      int64              `json:"time_ns"`
	Site        string             `json:"site"`
	SiteID      string             `json:"site_id"`
	Iterations  int64              `json:"iterations,omitempty"`
	Policy      int                `json:"policy"`
	Chunk       int                `json:"chunk,omitempty"`
	Predicted   int                `json:"predicted"`
	Explored    bool               `json:"explored,omitempty"`
	PredictedNS float64            `json:"predicted_ns"`
	ObservedNS  float64            `json:"observed_ns"`
	FeatureNS   float64            `json:"feature_ns,omitempty"`
	ModelNS     float64            `json:"model_ns,omitempty"`
	Features    map[string]float64 `json:"features,omitempty"`
	Path        []string           `json:"path,omitempty"`
	// TrailOffsets is the raw compact trail for records written by a
	// compiled site (Path above is its decoded rendering when the site's
	// decoder was available at capture time).
	TrailOffsets []int32 `json:"trail_offsets,omitempty"`
}

// Capture snapshots the recorder into its JSON form.
func (r *Recorder) Capture() *Capture {
	recs := r.Snapshot()
	c := &Capture{
		Format:  CaptureFormatID,
		Emitted: r.Emitted(),
		Dropped: r.Dropped(),
		Sites:   []CaptureSite{},
		Records: make([]CaptureRecord, 0, len(recs)),
	}
	if m := r.sites.Load(); m != nil {
		for id, s := range *m {
			cs := CaptureSite{ID: fmt.Sprintf("%#x", id), Name: s.name}
			if len(s.features) > 0 {
				cs.Features = s.features
			} else {
				cs.Features = r.featureNames
			}
			if d := s.dec.Load(); d != nil && d.Tree != nil {
				cs.CTree = d.Tree.Layout()
				cs.Src = d.Src
			}
			c.Sites = append(c.Sites, cs)
		}
	}
	sort.Slice(c.Sites, func(i, j int) bool { return c.Sites[i].ID < c.Sites[j].ID })
	for i := range recs {
		c.Records = append(c.Records, r.captureRecord(&recs[i]))
	}
	return c
}

func (r *Recorder) captureRecord(rec *Record) CaptureRecord {
	names := r.featureNames
	siteName := ""
	if s := r.siteFor(rec.Site); s != nil {
		siteName = s.name
		if len(s.features) > 0 {
			names = s.features
		}
	}
	out := CaptureRecord{
		Seq:         rec.Seq,
		TimeNS:      rec.TimeNS,
		Site:        siteName,
		SiteID:      fmt.Sprintf("%#x", rec.Site),
		Iterations:  rec.Iterations,
		Policy:      int(rec.Policy),
		Chunk:       int(rec.Chunk),
		Predicted:   int(rec.Predicted),
		Explored:    rec.Explored,
		PredictedNS: rec.PredictedNS,
		ObservedNS:  rec.ObservedNS,
		FeatureNS:   rec.FeatureNS,
		ModelNS:     rec.ModelNS,
	}
	if n := int(rec.NumFeatures); n > 0 {
		out.Features = make(map[string]float64, n)
		for i := 0; i < n && i < MaxFeatures; i++ {
			out.Features[featureName(names, i)] = rec.Features[i]
		}
	}
	if n := int(rec.TrailLen); n > 0 {
		if n > MaxTrail {
			n = MaxTrail
		}
		out.Path = ExplainTrail(rec.Trail[:n], names)
	}
	if n := int(rec.OffsetsLen); n > 0 {
		if n > MaxOffsets {
			n = MaxOffsets
		}
		out.TrailOffsets = append([]int32(nil), rec.Offsets[:n]...)
		if s := r.siteFor(rec.Site); s != nil && out.Path == nil {
			if d := s.dec.Load(); d != nil && d.Tree != nil {
				var steps [MaxTrail]dtree.TrailStep
				nf := int(rec.NumFeatures)
				if nf > MaxFeatures {
					nf = MaxFeatures
				}
				k := d.Tree.DecodeOffsets(out.TrailOffsets, d.Src, rec.Features[:nf], steps[:])
				out.Path = ExplainTrail(steps[:k], names)
			}
		}
	}
	return out
}

// featureName names feature index i, falling back to the positional
// "x[i]" form when the name table does not cover it.
func featureName(names []string, i int) string {
	if i >= 0 && i < len(names) {
		return names[i]
	}
	return fmt.Sprintf("x[%d]", i)
}

// ExplainTrail renders a decision trail as one human-readable line per
// split, in the style of the paper's Fig. 4 model listing:
//
//	num_indices (=16) <= 96 → left
//	trip_count (=4096) > 256 → right
//
// A step whose feature index is -1 consulted a model feature the source
// schema lacks (projected as zero).
func ExplainTrail(trail []dtree.TrailStep, names []string) []string {
	out := make([]string, len(trail))
	for i, st := range trail {
		name := "(absent feature)"
		if st.Feature >= 0 {
			name = featureName(names, int(st.Feature))
		}
		if st.Right {
			out[i] = fmt.Sprintf("%s (=%g) > %g → right", name, st.Value, st.Threshold)
		} else {
			out[i] = fmt.Sprintf("%s (=%g) <= %g → left", name, st.Value, st.Threshold)
		}
	}
	return out
}
