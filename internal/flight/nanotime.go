package flight

import (
	_ "unsafe" // for go:linkname
)

// nanotime is the runtime's monotonic clock. The flight recorder stamps
// and phase-times every decision on the launch hot path, where the
// apollo-vet hotpath contract (correctly) bans time.Now: it allocates
// nothing but reads the wall clock and carries a time.Time through the
// stack. runtime.nanotime is the raw vDSO monotonic read underneath it —
// a few nanoseconds, no allocation, no lock — which is exactly the
// always-on budget this package promises.
//
//go:linkname nanotime runtime.nanotime
func nanotime() int64

// Now returns the current monotonic time in nanoseconds. The zero point
// is arbitrary (process start); only differences are meaningful, which
// is all the flight recorder needs for phase timings and relative
// timelines. Callers on //apollo:hotpath functions may use it freely.
//
//apollo:hotpath
func Now() int64 { return nanotime() }
