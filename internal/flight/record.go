// Package flight is Apollo's always-on decision flight recorder: a
// lock-free, fixed-memory ring of decision-provenance records that every
// tuned kernel launch can write to at hot-path cost (tens of
// nanoseconds, zero allocations) and that live debug endpoints read
// without stopping the writers.
//
// Each record captures one decision end to end: which site (kernel or
// model) decided, the feature snapshot the model saw, the root-to-leaf
// trail through the decision tree (feature, threshold, direction at each
// split), the chosen parameters, the runtime the recorder predicted from
// past observations of that choice versus the runtime actually observed,
// and how the decision's own overhead broke down into feature
// extraction, model evaluation, and execution.
//
// The write side is //apollo:hotpath-clean and wait-free in steady
// state; see Recorder for the protocol. The read side (Snapshot,
// Capture) is a cold-path drain that never blocks writers for more than
// one in-flight record write.
package flight

import "apollo/internal/dtree"

const (
	// MaxFeatures is the widest feature snapshot a record can hold.
	// Table I is 41 features; the headroom lets applications with a few
	// extra custom features still record full snapshots. Wider vectors
	// are truncated, never dropped.
	MaxFeatures = 48

	// MaxTrail is the deepest decision trail a record can hold. The
	// paper's deployed models are pruned to depth 15, so 24 keeps even
	// generous trees fully explained; deeper paths keep walking but stop
	// recording (dtree.PredictTrail semantics).
	MaxTrail = 24

	// MaxOffsets sizes the compact offset trail: one internal-node offset
	// per level plus the terminal leaf reference.
	MaxOffsets = MaxTrail + 1
)

// Record is one decision's provenance. It is a fixed-size, pointer-free
// value (~1 KiB) so a ring of them is a single allocation and writers
// fill slots in place without touching the garbage collector.
//
// Fields beyond NumFeatures in Features and beyond TrailLen in Trail are
// stale leftovers from earlier occupants of the slot; readers must bound
// themselves by the lengths.
type Record struct {
	// Seq is the record's global emission sequence number (from 1).
	Seq uint64
	// TimeNS is the monotonic emission timestamp (flight.Now clock).
	TimeNS int64
	// Site identifies the decision site (kernel ID, model hash, ...);
	// RegisterSite attaches a human-readable name.
	Site uint64
	// Iterations is the tuned region's iteration count (0 if unknown).
	Iterations int64
	// Policy and Chunk are the chosen execution parameters. Sites that
	// decide something other than a raja policy store their class in
	// Policy and leave Chunk 0.
	Policy int32
	Chunk  int32
	// Predicted is the model's predicted class, or -1 when no model ran
	// (static tuning, explore override recorded separately).
	Predicted int32
	// NumFeatures and TrailLen bound the valid prefixes of Features and
	// Trail.
	NumFeatures int32
	TrailLen    int32
	// Explored reports that the tuner overrode the model's choice to
	// gather fresh telemetry, so Policy/Chunk may differ from Predicted.
	Explored bool
	// PredictedNS is the runtime the recorder expected for this site and
	// choice — the EWMA of previous observations (0 until the first
	// observation; see PredictObserve). ObservedNS is what actually
	// happened.
	PredictedNS float64
	ObservedNS  float64
	// FeatureNS and ModelNS are the decision's own overhead: time spent
	// extracting the feature snapshot and evaluating the model.
	FeatureNS float64
	ModelNS   float64
	// OffsetsLen bounds the valid prefix of Offsets.
	OffsetsLen int32
	// Features is the feature snapshot, source-schema layout.
	Features [MaxFeatures]float64
	// Trail is the root-to-leaf decision trail, with Feature indices in
	// the source schema (-1 for model features the source lacks).
	// Single-model compiled sites leave it empty and record Offsets
	// instead; multi-model sites (policy + chunk trails concatenated)
	// still use it.
	Trail [MaxTrail]dtree.TrailStep
	// Offsets is the compact trail encoding a compiled site writes: the
	// offset of every visited internal node in the site's ctree layout,
	// terminated by the (negative) leaf reference — 4 bytes per step
	// against TrailStep's 24. The capture layer expands it back into a
	// full explained path via the site's registered TrailDecoder.
	Offsets [MaxOffsets]int32
}
