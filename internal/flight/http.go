package flight

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"apollo/internal/trace"
)

// CaptureTrace records for the given duration (or until ctx is done) and
// returns the window's decisions as trace events: only records emitted
// after the call started are included, so back-to-back captures see
// disjoint windows even though the recorder's retained history overlaps.
func (r *Recorder) CaptureTrace(ctx context.Context, d time.Duration) []trace.Event {
	start := Now()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
	case <-timer.C:
	}
	recs := r.Snapshot()
	fresh := recs[:0]
	for i := range recs {
		if recs[i].TimeNS >= start {
			fresh = append(fresh, recs[i])
		}
	}
	return r.TraceEvents(fresh)
}

// maxTraceCapture caps /debug/apollo/trace?sec=N so a typo cannot hold a
// request handler (and its client connection) open for hours.
const maxTraceCapture = 5 * time.Minute

// RegisterDebug installs the flight-recorder debug endpoints and the
// pprof profiler on mux:
//
//	/debug/apollo/flight       recent decisions as apollo-flight-v1 JSON
//	/debug/apollo/trace?sec=N  N-second capture as Chrome trace-event JSON
//	/debug/pprof/...           net/http/pprof
//
// The handlers only read the recorder (drains move records into the
// retained window but lose nothing), so the endpoints are safe to expose
// on a live production process — that is the point of a flight recorder.
// rec may be nil, in which case the apollo endpoints report 503 and only
// pprof is live.
func RegisterDebug(mux *http.ServeMux, rec *Recorder) {
	mux.HandleFunc("GET /debug/apollo/flight", func(w http.ResponseWriter, req *http.Request) {
		if rec == nil {
			http.Error(w, "flight recorder not enabled", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(rec.Capture()) //apollo:errok debug endpoint: a client gone mid-response has no receiver for the error
	})
	mux.HandleFunc("GET /debug/apollo/trace", func(w http.ResponseWriter, req *http.Request) {
		if rec == nil {
			http.Error(w, "flight recorder not enabled", http.StatusServiceUnavailable)
			return
		}
		sec := 1.0
		if s := req.URL.Query().Get("sec"); s != "" {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil || v < 0 {
				http.Error(w, "bad sec parameter", http.StatusBadRequest)
				return
			}
			sec = v
		}
		d := time.Duration(sec * float64(time.Second))
		if d > maxTraceCapture {
			d = maxTraceCapture
		}
		events := rec.CaptureTrace(req.Context(), d)
		w.Header().Set("Content-Type", "application/json")
		trace.WriteChromeTrace(w, events) //apollo:errok debug endpoint: a client gone mid-response has no receiver for the error
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// DebugMux returns a mux with RegisterDebug applied — the embeddable
// debug surface an application hangs off its own listener:
//
//	go http.Serve(ln, flight.DebugMux(rec))
func DebugMux(rec *Recorder) *http.ServeMux {
	mux := http.NewServeMux()
	RegisterDebug(mux, rec)
	return mux
}
