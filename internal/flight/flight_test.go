package flight

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"apollo/internal/ctree"
	"apollo/internal/dtree"
)

// emitOne reserves, fills, and commits one record for site with the
// given observed runtime, mirroring what the tuner's End hook does.
func emitOne(r *Recorder, site uint64, class int, observed float64) {
	rec, tok := r.Reserve(site)
	if rec != nil {
		rec.Policy = int32(class)
		rec.Predicted = int32(class)
		rec.ObservedNS = observed
		rec.PredictedNS = r.PredictObserve(site, class, observed)
		rec.NumFeatures = 2
		rec.Features[0] = observed
		rec.Features[1] = float64(class)
		rec.TrailLen = 1
		rec.Trail[0] = dtree.TrailStep{Feature: 0, Right: true, Threshold: 1, Value: observed}
	}
	r.Commit(tok)
}

func TestEmitSnapshotRoundTrip(t *testing.T) {
	r := New(Options{Shards: 1, ShardCapacity: 8, FeatureNames: []string{"obs", "class"}})
	r.RegisterSite(7, "daxpy", nil)
	emitOne(r, 7, 2, 100)
	emitOne(r, 7, 2, 200)
	recs := r.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Seq != 1 || recs[1].Seq != 2 {
		t.Fatalf("bad seqs: %d, %d", recs[0].Seq, recs[1].Seq)
	}
	if recs[0].Site != 7 || recs[0].Policy != 2 || recs[0].ObservedNS != 100 {
		t.Fatalf("bad record: %+v", recs[0])
	}
	// First observation predicts 0; the second predicts the first's EWMA.
	if recs[0].PredictedNS != 0 {
		t.Fatalf("first prediction = %g, want 0", recs[0].PredictedNS)
	}
	if recs[1].PredictedNS != 100 {
		t.Fatalf("second prediction = %g, want 100 (prior EWMA)", recs[1].PredictedNS)
	}
	if got := r.Emitted(); got != 2 {
		t.Fatalf("Emitted = %d, want 2", got)
	}
	// Snapshot is non-destructive: the retained window still has both.
	if again := r.Snapshot(); len(again) != 2 {
		t.Fatalf("second snapshot lost records: got %d", len(again))
	}
}

func TestWraparoundKeepsNewest(t *testing.T) {
	const capacity = 8
	r := New(Options{Shards: 1, ShardCapacity: capacity, Retain: capacity})
	r.RegisterSite(1, "k", nil)
	// 3x capacity emissions without an intervening drain: the ring laps
	// itself twice; only the newest `capacity` survive, and the retained
	// window then bounds history at `capacity`.
	for i := 0; i < 3*capacity; i++ {
		emitOne(r, 1, 0, float64(i))
	}
	recs := r.Snapshot()
	if len(recs) != capacity {
		t.Fatalf("got %d records, want %d", len(recs), capacity)
	}
	for i, rec := range recs {
		want := uint64(2*capacity + i + 1)
		if rec.Seq != want {
			t.Fatalf("record %d: seq %d, want %d (newest must win wraparound)", i, rec.Seq, want)
		}
	}
	// Keep emitting after a drain: retained stays bounded and ordered.
	for i := 0; i < 2*capacity; i++ {
		emitOne(r, 1, 0, float64(i))
	}
	recs = r.Snapshot()
	if len(recs) != capacity {
		t.Fatalf("after refill: got %d records, want %d", len(recs), capacity)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq <= recs[i-1].Seq {
			t.Fatalf("snapshot out of order at %d: %d then %d", i, recs[i-1].Seq, recs[i].Seq)
		}
	}
}

// TestConcurrentEmit hammers the recorder from a sweep of goroutine
// counts while a reader snapshots continuously. Run under -race this is
// the soundness proof for the buffer-flip protocol: any torn read or
// unsynchronized payload access fails the build.
func TestConcurrentEmit(t *testing.T) {
	for _, writers := range []int{1, 2, runtime.GOMAXPROCS(0), 2 * runtime.GOMAXPROCS(0)} {
		writers := writers
		t.Run(fmt.Sprintf("writers=%d", writers), func(t *testing.T) {
			r := New(Options{Shards: 4, ShardCapacity: 64})
			const perWriter = 500
			for w := 0; w < writers; w++ {
				r.RegisterSite(uint64(w), fmt.Sprintf("site%d", w), nil)
			}
			var readerWG, writerWG sync.WaitGroup
			stop := make(chan struct{})
			readerWG.Add(1)
			go func() { // concurrent reader
				defer readerWG.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					for _, rec := range r.Snapshot() {
						if rec.Seq == 0 || rec.ObservedNS != float64(rec.Seq) {
							panic(fmt.Sprintf("torn record: %+v", rec))
						}
					}
				}
			}()
			for w := 0; w < writers; w++ {
				writerWG.Add(1)
				go func(w int) {
					defer writerWG.Done()
					for i := 0; i < perWriter; i++ {
						rec, tok := r.Reserve(uint64(w))
						if rec != nil {
							// Stamp a payload derived from the unique Seq so the
							// reader can detect tearing.
							rec.ObservedNS = float64(rec.Seq)
							rec.NumFeatures = MaxFeatures
							for f := 0; f < MaxFeatures; f++ {
								rec.Features[f] = float64(rec.Seq)
							}
						}
						r.Commit(tok)
					}
				}(w)
			}
			writerWG.Wait()
			close(stop)
			readerWG.Wait()
			if got := r.Emitted() + r.Dropped(); got != uint64(writers*perWriter) {
				t.Fatalf("emitted+dropped = %d, want %d", got, writers*perWriter)
			}
			// Everything still visible must be coherent.
			for _, rec := range r.Snapshot() {
				if rec.ObservedNS != float64(rec.Seq) {
					t.Fatalf("torn record after quiesce: %+v", rec)
				}
				for f := 0; f < int(rec.NumFeatures); f++ {
					if rec.Features[f] != float64(rec.Seq) {
						t.Fatalf("torn feature %d: %g != %d", f, rec.Features[f], rec.Seq)
					}
				}
			}
		})
	}
}

func TestEmitAllocFree(t *testing.T) {
	r := New(Options{Shards: 2, ShardCapacity: 32})
	r.RegisterSite(42, "k", nil)
	avg := testing.AllocsPerRun(1000, func() {
		rec, tok := r.Reserve(42)
		if rec != nil {
			rec.Policy = 1
			rec.ObservedNS = 5
			rec.PredictedNS = r.PredictObserve(42, 1, 5)
		}
		r.Commit(tok)
	})
	if avg != 0 {
		t.Fatalf("emit allocates %v per op, want 0", avg)
	}
}

func TestPredictObserveEWMA(t *testing.T) {
	r := New(Options{Shards: 1, ShardCapacity: 8})
	r.RegisterSite(1, "k", nil)
	if got := r.PredictObserve(1, 0, 100); got != 0 {
		t.Fatalf("first observation predicted %g, want 0", got)
	}
	if got := r.PredictObserve(1, 0, 200); got != 100 {
		t.Fatalf("second observation predicted %g, want 100", got)
	}
	// EWMA after 100 then 200: 0.75*100 + 0.25*200 = 125.
	if got := r.PredictObserve(1, 0, 0); got != 125 {
		t.Fatalf("third observation predicted %g, want 125", got)
	}
	// Classes are independent.
	if got := r.PredictObserve(1, 3, 50); got != 0 {
		t.Fatalf("fresh class predicted %g, want 0", got)
	}
	// Unregistered sites predict 0 and learn nothing.
	if got := r.PredictObserve(99, 0, 1e9); got != 0 {
		t.Fatalf("unregistered site predicted %g, want 0", got)
	}
	// Out-of-range classes clamp instead of crashing.
	_ = r.PredictObserve(1, maxClasses+5, 1)
	_ = r.PredictObserve(1, -3, 1)
}

func TestRegisterSiteIdempotent(t *testing.T) {
	r := New(Options{Shards: 1, ShardCapacity: 8})
	r.RegisterSite(1, "first", []string{"a"})
	r.PredictObserve(1, 0, 100) // seed an EWMA
	r.RegisterSite(1, "second", nil)
	if got := r.SiteName(1); got != "first" {
		t.Fatalf("re-registration replaced site: name = %q", got)
	}
	if got := r.PredictObserve(1, 0, 100); got != 100 {
		t.Fatalf("re-registration lost EWMA: predicted %g, want 100", got)
	}
	if !r.SiteKnown(1) || r.SiteKnown(2) {
		t.Fatalf("SiteKnown wrong: 1=%v 2=%v", r.SiteKnown(1), r.SiteKnown(2))
	}
}

func TestCaptureExplains(t *testing.T) {
	names := []string{"num_indices", "trip_count"}
	r := New(Options{Shards: 1, ShardCapacity: 8, FeatureNames: names})
	r.RegisterSite(7, "daxpy", nil)
	rec, tok := r.Reserve(7)
	if rec == nil {
		t.Fatal("reservation dropped on an empty ring")
	}
	rec.Policy = 1
	rec.Predicted = 1
	rec.Iterations = 4096
	rec.NumFeatures = 2
	rec.Features[0] = 16
	rec.Features[1] = 4096
	rec.TrailLen = 2
	rec.Trail[0] = dtree.TrailStep{Feature: 0, Right: false, Threshold: 96, Value: 16}
	rec.Trail[1] = dtree.TrailStep{Feature: 1, Right: true, Threshold: 256, Value: 4096}
	r.Commit(tok)

	c := r.Capture()
	if c.Format != CaptureFormatID {
		t.Fatalf("format %q", c.Format)
	}
	if len(c.Sites) != 1 || c.Sites[0].Name != "daxpy" {
		t.Fatalf("sites: %+v", c.Sites)
	}
	if len(c.Records) != 1 {
		t.Fatalf("records: %d", len(c.Records))
	}
	cr := c.Records[0]
	if cr.Site != "daxpy" || cr.Policy != 1 || cr.Iterations != 4096 {
		t.Fatalf("record: %+v", cr)
	}
	if cr.Features["num_indices"] != 16 || cr.Features["trip_count"] != 4096 {
		t.Fatalf("features: %+v", cr.Features)
	}
	wantPath := []string{
		"num_indices (=16) <= 96 → left",
		"trip_count (=4096) > 256 → right",
	}
	if len(cr.Path) != 2 || cr.Path[0] != wantPath[0] || cr.Path[1] != wantPath[1] {
		t.Fatalf("path: %q, want %q", cr.Path, wantPath)
	}
}

// TestCaptureDecodesOffsets is the compact-trail round trip: a compiled
// site writes only node offsets; the capture layer must expand them into
// the same explained path the TrailStep form would have produced, and
// embed the compiled layout so offline consumers can re-decode.
func TestCaptureDecodesOffsets(t *testing.T) {
	names := []string{"num_indices", "trip_count"}
	dt := &dtree.Tree{
		Root: &dtree.Node{
			Feature: 0, Threshold: 96,
			Left: &dtree.Node{Feature: -1, Label: 0},
			Right: &dtree.Node{
				Feature: 1, Threshold: 256,
				Left:  &dtree.Node{Feature: -1, Label: 0},
				Right: &dtree.Node{Feature: -1, Label: 1},
			},
		},
		NumFeatures: 2, NumClasses: 2,
	}
	ct, err := ctree.Compile(dt)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}

	r := New(Options{Shards: 1, ShardCapacity: 8, FeatureNames: names})
	r.RegisterSite(7, "daxpy", nil)
	r.SetSiteDecoder(7, &TrailDecoder{Tree: ct, Src: []int32{0, 1}})
	if d := r.SiteDecoder(7); d == nil || d.Tree != ct {
		t.Fatal("SiteDecoder does not return the registered decoder")
	}

	rec, tok := r.Reserve(7)
	if rec == nil {
		t.Fatal("reservation dropped on an empty ring")
	}
	rec.NumFeatures = 2
	rec.Features[0] = 4096 // num_indices > 96 → right
	rec.Features[1] = 4096 // trip_count > 256 → right
	class, n := ct.PredictOffsets([]float64{4096, 4096}, rec.Offsets[:])
	rec.OffsetsLen = int32(n)
	rec.Predicted = int32(class)
	rec.Policy = int32(class)
	r.Commit(tok)

	c := r.Capture()
	if len(c.Sites) != 1 || c.Sites[0].CTree == nil || len(c.Sites[0].Src) != 2 {
		t.Fatalf("site does not embed compiled layout: %+v", c.Sites)
	}
	cr := c.Records[0]
	if len(cr.TrailOffsets) != n {
		t.Fatalf("trail_offsets %v, want %d entries", cr.TrailOffsets, n)
	}
	wantPath := []string{
		"num_indices (=4096) > 96 → right",
		"trip_count (=4096) > 256 → right",
	}
	if len(cr.Path) != 2 || cr.Path[0] != wantPath[0] || cr.Path[1] != wantPath[1] {
		t.Fatalf("decoded path %q, want %q", cr.Path, wantPath)
	}
}

func TestExplainTrailFallbacks(t *testing.T) {
	trail := []dtree.TrailStep{
		{Feature: -1, Right: false, Threshold: 1, Value: 0},
		{Feature: 5, Right: true, Threshold: 2, Value: 3},
	}
	lines := ExplainTrail(trail, []string{"only"})
	if lines[0] != "(absent feature) (=0) <= 1 → left" {
		t.Fatalf("absent-feature line: %q", lines[0])
	}
	if lines[1] != "x[5] (=3) > 2 → right" {
		t.Fatalf("unnamed-feature line: %q", lines[1])
	}
}

// BenchmarkEmit measures the full hot-path emission: reserve, stamp a
// realistic payload (41 features, depth-8 trail), EWMA update, commit.
// The b.ReportAllocs figure is the EXPERIMENTS.md 0-allocs claim.
func BenchmarkEmit(b *testing.B) {
	r := New(Options{})
	r.RegisterSite(1, "k", nil)
	var trail [8]dtree.TrailStep
	for i := range trail {
		trail[i] = dtree.TrailStep{Feature: int32(i), Right: i%2 == 0, Threshold: 1, Value: 2}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, tok := r.Reserve(1)
		if rec != nil {
			rec.Iterations = int64(i)
			rec.Policy = 1
			rec.Chunk = 64
			rec.Predicted = 1
			rec.NumFeatures = 41
			for f := 0; f < 41; f++ {
				rec.Features[f] = float64(f)
			}
			rec.TrailLen = int32(copy(rec.Trail[:], trail[:]))
			rec.ObservedNS = 1000
			rec.PredictedNS = r.PredictObserve(1, 1, 1000)
			rec.FeatureNS = 50
			rec.ModelNS = 20
		}
		r.Commit(tok)
	}
}

// BenchmarkEmitParallel is the contended case: every P emitting to the
// same site (worst case: one shard).
func BenchmarkEmitParallel(b *testing.B) {
	r := New(Options{})
	r.RegisterSite(1, "k", nil)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			rec, tok := r.Reserve(1)
			if rec != nil {
				rec.Policy = 1
				rec.ObservedNS = 1000
				rec.PredictedNS = r.PredictObserve(1, 1, 1000)
			}
			r.Commit(tok)
		}
	})
}

func BenchmarkNow(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Now()
	}
}
