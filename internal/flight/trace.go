package flight

import (
	"fmt"

	"apollo/internal/raja"
	"apollo/internal/trace"
)

// TraceEvents converts flight records into trace events suitable for
// trace.WriteChromeTrace, on a timeline rebased so the earliest span
// starts at 0.
//
// Each record becomes an execution span named after its site (sequential
// and parallel picks land on separate tracks, as in the launch tracer),
// annotated with the decision provenance: predicted class,
// predicted-vs-observed runtime, exploration flag. Records with phase
// timings additionally produce a "decision" span for the tuning overhead
// (feature extraction + model evaluation), placed immediately before the
// execution span it parameterized — the timing is re-measured at launch
// end, so the placement is presentational, not a measurement of when the
// phases ran.
func (r *Recorder) TraceEvents(recs []Record) []trace.Event {
	if len(recs) == 0 {
		return nil
	}
	base := recs[0].TimeNS
	for i := range recs {
		rec := &recs[i]
		start := rec.TimeNS - int64(rec.ObservedNS+rec.FeatureNS+rec.ModelNS)
		if start < base {
			base = start
		}
	}
	events := make([]trace.Event, 0, 2*len(recs))
	for i := range recs {
		rec := &recs[i]
		name := r.SiteName(rec.Site)
		if name == "" {
			name = fmt.Sprintf("site-%#x", rec.Site)
		}
		params := raja.Params{Policy: raja.Policy(rec.Policy), Chunk: int(rec.Chunk)}
		execStart := rec.TimeNS - int64(rec.ObservedNS)
		events = append(events, trace.Event{
			Kernel:     name,
			StartNS:    float64(execStart - base),
			DurationNS: rec.ObservedNS,
			Iterations: int(rec.Iterations),
			Params:     params,
			Args: map[string]string{
				"seq":          fmt.Sprintf("%d", rec.Seq),
				"predicted":    fmt.Sprintf("%d", rec.Predicted),
				"predicted_ns": fmt.Sprintf("%.0f", rec.PredictedNS),
				"explored":     fmt.Sprintf("%t", rec.Explored),
			},
		})
		if overhead := rec.FeatureNS + rec.ModelNS; overhead > 0 {
			events = append(events, trace.Event{
				Kernel:     name + " decision",
				Cat:        "decision",
				StartNS:    float64(execStart-base) - overhead,
				DurationNS: overhead,
				Iterations: int(rec.Iterations),
				Params:     params,
				Args: map[string]string{
					"seq":        fmt.Sprintf("%d", rec.Seq),
					"feature_ns": fmt.Sprintf("%.0f", rec.FeatureNS),
					"model_ns":   fmt.Sprintf("%.0f", rec.ModelNS),
				},
			})
		}
	}
	return events
}
