package flight

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"apollo/internal/ctree"
)

// maxClasses bounds the per-site predicted-runtime table: one EWMA per
// chosen class (execution policy or chunk class). The largest class
// space today is the chunk-size model's len(raja.ChunkSizes); 16 leaves
// headroom without bloating the site entry.
const maxClasses = 16

// ewmaAlpha is the weight of a new observation in the per-(site, class)
// runtime EWMA that backs Record.PredictedNS.
const ewmaAlpha = 0.25

// slot is one ring cell: a record plus its claim word. claim is 1 while
// a writer is filling the record, 0 otherwise; a writer that finds the
// slot claimed (it lapped a straggler) drops its record rather than
// corrupting the in-flight one.
type slot struct {
	rec   Record
	claim atomic.Uint32
}

// ring is one shard's record buffer. active counts writers currently
// inside the buffer; the drain protocol (see drainLocked) swaps a fresh
// ring in and waits for active to hit zero, after which the old ring is
// quiescent and safe to read with plain loads.
type ring struct {
	active atomic.Int64
	pos    atomic.Uint64
	slots  []slot
}

func newRing(capacity int) *ring {
	return &ring{slots: make([]slot, capacity)}
}

// shard pairs the published ring with a quiescent spare the drain flips
// to, so steady-state snapshots allocate nothing. spare is guarded by
// Recorder.retainMu (only the drain touches it).
type shard struct {
	buf   atomic.Pointer[ring]
	spare *ring
	_     [40]byte // keep neighboring shards off one cache line
}

// Options configures a Recorder. The zero value is a sensible default:
// one ring shard per P, 256 records per shard, retained history equal to
// total ring capacity.
type Options struct {
	// Shards is the number of independent rings (rounded up to a power
	// of two, capped at 64). More shards mean less reservation
	// contention; records hash to shards by site.
	Shards int
	// ShardCapacity is the number of records per shard (rounded up to a
	// power of two). Total memory is roughly Shards*ShardCapacity KiB.
	ShardCapacity int
	// Retain is how many drained records the recorder keeps for the
	// "recent decisions" view after they age out of the rings.
	Retain int
	// FeatureNames names feature-vector indices for explanations, for
	// sites that do not register their own names (typically the Table I
	// schema names).
	FeatureNames []string
}

// Recorder is the flight recorder: an always-on, lock-free ring of
// decision Records.
//
// Write protocol (hot path, zero allocations): Reserve a record, fill it
// in place, Commit. Reserve pins the shard's current ring with an active
// count, double-checking the ring is still published after pinning — a
// concurrent drain that swapped rings is detected and the writer retries
// on the new ring, so payload writes only ever hit a published ring. A
// per-slot claim word turns writer-lap collisions into counted drops
// instead of torn records.
//
// Read protocol (cold path): the drain unpublishes a ring, waits for its
// writers to leave, then reads it with plain loads — no per-field
// atomics, race-detector clean — and republishes it as the next spare.
// Readers therefore never block writers beyond the fill of one record.
//
// A nil *Recorder is the disabled state; callers gate emission on a nil
// check, which is the entire cost when flight recording is off.
type Recorder struct {
	seq     atomic.Uint64
	emitted atomic.Uint64
	dropped atomic.Uint64

	shardMask uint64
	ringMask  uint64
	shards    []shard

	sites atomic.Pointer[map[uint64]*site]
	// siteMu serializes site registration (readers go through the
	// copy-on-write sites pointer and never take it).
	siteMu sync.Mutex //apollo:lockrank 30

	featureNames []string

	// retainMu serializes drains and guards retained and each shard's
	// spare ring.
	retainMu  sync.Mutex //apollo:lockrank 31
	retained  []Record
	retainCap int
}

// site is the interned metadata for one decision site, registered on
// the cold path and read lock-free on the hot path.
type site struct {
	// ewma holds the per-class observed-runtime EWMA as float64 bits.
	// Updates race benignly (a lost update loses one sample's weight);
	// each load/store is atomic so values are never torn.
	ewma     [maxClasses]atomic.Uint64
	name     string
	features []string
	// dec is the decoder for the site's compact offset trails, swapped
	// whenever the site's compiled model changes.
	dec atomic.Pointer[TrailDecoder]
}

// TrailDecoder ties a site's compact offset trails (Record.Offsets) to
// the compiled tree that wrote them, plus the model→source feature index
// mapping for rendering source-schema explanations. Immutable once
// registered; a model swap registers a fresh decoder.
type TrailDecoder struct {
	Tree *ctree.Tree
	Src  []int32
}

// New builds a Recorder.
func New(opts Options) *Recorder {
	shards := opts.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > 64 {
		shards = 64
	}
	shards = ceilPow2(shards)
	capacity := opts.ShardCapacity
	if capacity <= 0 {
		capacity = 256
	}
	capacity = ceilPow2(capacity)
	r := &Recorder{
		shardMask:    uint64(shards - 1),
		ringMask:     uint64(capacity - 1),
		shards:       make([]shard, shards),
		featureNames: append([]string(nil), opts.FeatureNames...),
		retainCap:    opts.Retain,
	}
	for i := range r.shards {
		r.shards[i].buf.Store(newRing(capacity))
		r.shards[i].spare = newRing(capacity)
	}
	if r.retainCap <= 0 {
		r.retainCap = shards * capacity
	}
	return r
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// mix is splitmix64's finalizer, spreading site IDs across shards.
//
//apollo:hotpath
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e9b5
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Token links a reserved record back to its ring for Commit. The zero
// Token (from a dropped reservation) commits as a no-op.
type Token struct {
	ring *ring
	slot *slot
}

// Reserve claims a record slot for the given site and stamps Seq,
// TimeNS, and Site. The caller fills the remaining fields in place and
// must Commit the returned token promptly — the slot stays claimed and
// the ring stays pinned until then. Reserve returns a nil record when a
// lapping writer still owns the slot; callers must tolerate that (skip
// the fill, still call Commit).
//
//apollo:hotpath
//apollo:cowok the ring behind buf is a mutable arena, not a COW value: slots are claimed by CAS before any write and released by Commit, and drains quiesce on the active pin count before reading
func (r *Recorder) Reserve(siteID uint64) (*Record, Token) {
	sh := &r.shards[mix(siteID)&r.shardMask]
	var rb *ring
	for {
		rb = sh.buf.Load()
		rb.active.Add(1)
		if sh.buf.Load() == rb {
			break
		}
		// A drain swapped rings between our load and pin; leave and
		// retry on the newly published ring.
		rb.active.Add(-1)
	}
	s := &rb.slots[(rb.pos.Add(1)-1)&r.ringMask]
	if !s.claim.CompareAndSwap(0, 1) {
		rb.active.Add(-1)
		r.dropped.Add(1)
		return nil, Token{}
	}
	rec := &s.rec
	rec.Seq = r.seq.Add(1)
	rec.TimeNS = nanotime()
	rec.Site = siteID
	rec.Iterations = 0
	rec.Policy = 0
	rec.Chunk = 0
	rec.Predicted = -1
	rec.NumFeatures = 0
	rec.TrailLen = 0
	rec.OffsetsLen = 0
	rec.Explored = false
	rec.PredictedNS = 0
	rec.ObservedNS = 0
	rec.FeatureNS = 0
	rec.ModelNS = 0
	return rec, Token{ring: rb, slot: s}
}

// Commit publishes a reserved record: it releases the slot claim, then
// unpins the ring, which is the happens-before edge a drain waits on
// before reading the payload.
//
//apollo:hotpath
func (r *Recorder) Commit(t Token) {
	if t.slot == nil {
		return
	}
	t.slot.claim.Store(0)
	t.ring.active.Add(-1)
	r.emitted.Add(1)
}

// Emitted returns the number of committed records since creation.
func (r *Recorder) Emitted() uint64 { return r.emitted.Load() }

// Dropped returns the number of reservations dropped on slot collisions.
func (r *Recorder) Dropped() uint64 { return r.dropped.Load() }

// Capacity returns the total ring capacity in records.
func (r *Recorder) Capacity() int { return len(r.shards) * (int(r.ringMask) + 1) }

// Occupancy reports how many ring slots hold live records in each shard
// (capped at the shard capacity — the ring wraps, so a position past
// capacity means the shard is full, not overfull). Metrics exporters
// poll it; the plain loads race benignly with writers.
func (r *Recorder) Occupancy() []int {
	out := make([]int, len(r.shards))
	capacity := int(r.ringMask) + 1
	for i := range r.shards {
		used := int(r.shards[i].buf.Load().pos.Load())
		if used > capacity {
			used = capacity
		}
		out[i] = used
	}
	return out
}

// SiteKnown reports whether the site has been registered. It is the
// hot-path gate in front of the cold RegisterSite call.
//
//apollo:hotpath
func (r *Recorder) SiteKnown(id uint64) bool {
	m := r.sites.Load()
	if m == nil {
		return false
	}
	_, ok := (*m)[id]
	return ok
}

// RegisterSite attaches a human-readable name and optional per-site
// feature names to a site ID. It is idempotent (first registration
// wins, preserving the runtime EWMAs) and safe to call concurrently
// with hot-path readers, which go through the copy-on-write map.
//
//apollo:coldpath first-launch site interning, amortized over every later emit
func (r *Recorder) RegisterSite(id uint64, name string, featureNames []string) {
	r.siteMu.Lock()
	defer r.siteMu.Unlock()
	old := r.sites.Load()
	if old != nil {
		if _, ok := (*old)[id]; ok {
			return
		}
	}
	m := make(map[uint64]*site, 1)
	if old != nil {
		for k, v := range *old {
			m[k] = v
		}
	}
	m[id] = &site{name: name, features: append([]string(nil), featureNames...)}
	r.sites.Store(&m)
}

// siteFor returns the interned site entry, or nil if unregistered.
func (r *Recorder) siteFor(id uint64) *site {
	m := r.sites.Load()
	if m == nil {
		return nil
	}
	return (*m)[id]
}

// SiteDecoder returns the site's current offset-trail decoder (nil when
// the site is unregistered or has never installed one). Emitters read it
// per launch to detect model swaps, so it is one lock-free map load.
//
//apollo:hotpath
func (r *Recorder) SiteDecoder(id uint64) *TrailDecoder {
	s := r.siteFor(id)
	if s == nil {
		return nil
	}
	return s.dec.Load()
}

// SetSiteDecoder installs the decoder for a site's compact offset
// trails. Call it after RegisterSite, and again whenever the site's
// compiled model changes; records written under an older decoder decode
// against the new one only as far as the layouts agree, which is why
// emitters swap the decoder before writing the first record of a new
// model. A no-op for unregistered sites. Runs at model-swap time, never
// per launch (the TrailDecoder the caller allocates is what keeps it off
// the hot path; the install itself is one atomic pointer store).
func (r *Recorder) SetSiteDecoder(id uint64, d *TrailDecoder) {
	if s := r.siteFor(id); s != nil {
		s.dec.Store(d)
	}
}

// SiteName returns the registered name for a site ID ("" when unknown).
func (r *Recorder) SiteName(id uint64) string {
	if s := r.siteFor(id); s != nil {
		return s.name
	}
	return ""
}

// PredictObserve folds one observed runtime into the (site, class) EWMA
// and returns the prediction that EWMA made *before* the update — the
// runtime the recorder expected for this choice, 0 for the first
// observation. Callers store the return value in Record.PredictedNS and
// the argument in Record.ObservedNS, giving the predicted-vs-observed
// pair the misprediction analysis runs on. Unregistered sites predict 0
// and learn nothing.
//
//apollo:hotpath
func (r *Recorder) PredictObserve(siteID uint64, class int, observedNS float64) (predictedNS float64) {
	s := r.siteFor(siteID)
	if s == nil {
		return 0
	}
	if class < 0 {
		class = 0
	}
	if class >= maxClasses {
		class = maxClasses - 1
	}
	a := &s.ewma[class]
	prior := math.Float64frombits(a.Load())
	if prior == 0 {
		a.Store(math.Float64bits(observedNS))
		return 0
	}
	// A concurrent update between load and store loses one sample's
	// weight — benign for an EWMA, and keeps the hot path CAS-free.
	a.Store(math.Float64bits((1-ewmaAlpha)*prior + ewmaAlpha*observedNS))
	return prior
}

// Snapshot drains the rings into the retained history and returns a copy
// of the retained records ordered by emission sequence. It is
// non-destructive from the caller's perspective: records stay in the
// retained window (bounded by Options.Retain) until newer ones push them
// out.
func (r *Recorder) Snapshot() []Record {
	r.retainMu.Lock()
	defer r.retainMu.Unlock()
	r.drainLocked()
	out := make([]Record, len(r.retained))
	copy(out, r.retained)
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// drainLocked moves every committed record out of the rings into
// retained. Caller holds retainMu.
func (r *Recorder) drainLocked() {
	for i := range r.shards {
		sh := &r.shards[i]
		old := sh.buf.Load()
		if old.pos.Load() == 0 {
			continue // nothing reserved this generation
		}
		sh.buf.Store(sh.spare)
		// Writers that pinned the old ring before the swap finish their
		// one record and leave; writers arriving after the swap bounce
		// off the double-check in Reserve. Quiescence is bounded by one
		// record fill.
		for old.active.Load() != 0 {
			runtime.Gosched()
		}
		for j := range old.slots {
			s := &old.slots[j]
			if s.rec.Seq != 0 {
				r.retained = append(r.retained, s.rec)
				s.rec.Seq = 0 //apollo:cowok old ring was unpublished by the swap above and quiesced on active==0; clearing Seq recycles it as the next spare
			}
		}
		old.pos.Store(0)
		sh.spare = old
	}
	if len(r.retained) > r.retainCap {
		sort.Slice(r.retained, func(i, j int) bool { return r.retained[i].Seq < r.retained[j].Seq })
		n := len(r.retained) - r.retainCap
		r.retained = append(r.retained[:0], r.retained[n:]...)
	}
}
