package flight

import (
	"bytes"
	"encoding/json"
	"testing"

	"apollo/internal/trace"
)

func TestTraceEventsFromRecords(t *testing.T) {
	r := New(Options{Shards: 1, ShardCapacity: 8})
	r.RegisterSite(7, "daxpy", nil)
	rec, tok := r.Reserve(7)
	if rec == nil {
		t.Fatal("reservation dropped")
	}
	rec.Iterations = 100
	rec.Policy = 1
	rec.Predicted = 1
	rec.ObservedNS = 5000
	rec.PredictedNS = 4000
	rec.FeatureNS = 100
	rec.ModelNS = 50
	r.Commit(tok)
	rec2, tok2 := r.Reserve(7)
	if rec2 == nil {
		t.Fatal("reservation dropped")
	}
	rec2.Iterations = 10
	rec2.Policy = 0
	rec2.ObservedNS = 300
	r.Commit(tok2)

	events := r.TraceEvents(r.Snapshot())
	// Record 1 has phase timings → execution + decision spans; record 2
	// has none → execution only.
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	exec := events[0]
	if exec.Kernel != "daxpy" || exec.DurationNS != 5000 || exec.Iterations != 100 {
		t.Fatalf("execution span wrong: %+v", exec)
	}
	if exec.Args["predicted_ns"] != "4000" || exec.Args["explored"] != "false" {
		t.Fatalf("execution args wrong: %v", exec.Args)
	}
	dec := events[1]
	if dec.Cat != "decision" || dec.Kernel != "daxpy decision" || dec.DurationNS != 150 {
		t.Fatalf("decision span wrong: %+v", dec)
	}
	// The decision span sits immediately before its execution span.
	if got := dec.StartNS + dec.DurationNS; got != exec.StartNS {
		t.Fatalf("decision ends at %g, execution starts at %g", got, exec.StartNS)
	}
	// Timeline is rebased: nothing starts before 0.
	for _, e := range events {
		if e.StartNS < 0 {
			t.Fatalf("event starts before 0: %+v", e)
		}
	}

	// The converted events export as valid Chrome trace JSON.
	var buf bytes.Buffer
	if err := trace.WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("not valid trace JSON: %v", err)
	}
	if len(decoded) != 3 {
		t.Fatalf("exported %d entries", len(decoded))
	}
}

func TestTraceEventsEmpty(t *testing.T) {
	r := New(Options{Shards: 1, ShardCapacity: 8})
	if events := r.TraceEvents(nil); events != nil {
		t.Fatalf("empty conversion returned %v", events)
	}
}

func TestTraceEventsUnknownSite(t *testing.T) {
	r := New(Options{Shards: 1, ShardCapacity: 8})
	rec, tok := r.Reserve(0xbeef)
	if rec == nil {
		t.Fatal("reservation dropped")
	}
	rec.ObservedNS = 10
	r.Commit(tok)
	events := r.TraceEvents(r.Snapshot())
	if len(events) != 1 || events[0].Kernel != "site-0xbeef" {
		t.Fatalf("unknown site not named positionally: %+v", events)
	}
}
