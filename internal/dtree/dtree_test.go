package dtree

import (
	"encoding/json"
	"math"
	"path/filepath"
	"testing"
	"testing/quick"

	"apollo/internal/dataset"
)

// thresholdData builds a 1-D dataset separable at x = 50.
func thresholdData(n int) ([][]float64, []int) {
	X := make([][]float64, n)
	y := make([]int, n)
	rng := dataset.NewRNG(3)
	for i := range X {
		v := rng.Float64() * 100
		X[i] = []float64{v}
		if v > 50 {
			y[i] = 1
		}
	}
	return X, y
}

// xorData builds a 2-D dataset requiring at least depth 2.
func xorData() ([][]float64, []int) {
	var X [][]float64
	var y []int
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			for rep := 0; rep < 10; rep++ {
				X = append(X, []float64{float64(a) + float64(rep)*0.01, float64(b) + float64(rep)*0.01})
				y = append(y, a^b)
			}
		}
	}
	return X, y
}

func TestTrainSeparableDataPerfect(t *testing.T) {
	X, y := thresholdData(200)
	tree, err := Train(X, y, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := tree.Accuracy(X, y); acc != 1 {
		t.Errorf("training accuracy = %g, want 1 on separable data", acc)
	}
	// The learned threshold must sit near the true boundary.
	if tree.Root.IsLeaf() {
		t.Fatal("tree did not split")
	}
	if th := tree.Root.Threshold; th < 40 || th > 60 {
		t.Errorf("root threshold %g far from 50", th)
	}
}

func TestTrainXORNeedsDepthTwo(t *testing.T) {
	X, y := xorData()
	tree, err := Train(X, y, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := tree.Accuracy(X, y); acc != 1 {
		t.Errorf("XOR accuracy = %g", acc)
	}
	if d := tree.Depth(); d < 2 {
		t.Errorf("XOR tree depth = %d, want >= 2", d)
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, nil, 2, Config{}); err == nil {
		t.Error("empty training set should fail")
	}
	if _, err := Train([][]float64{{1}}, []int{0, 1}, 2, Config{}); err == nil {
		t.Error("mismatched lengths should fail")
	}
	if _, err := Train([][]float64{{1}}, []int{5}, 2, Config{}); err == nil {
		t.Error("out-of-range label should fail")
	}
	if _, err := Train([][]float64{{1}, {2, 3}}, []int{0, 1}, 2, Config{}); err == nil {
		t.Error("ragged features should fail")
	}
	if _, err := Train([][]float64{{1}}, []int{0}, 1, Config{}); err == nil {
		t.Error("single class should fail")
	}
}

func TestMaxDepthRespected(t *testing.T) {
	X, y := thresholdData(500)
	for _, maxDepth := range []int{1, 2, 3, 5} {
		tree, err := Train(X, y, 2, Config{MaxDepth: maxDepth})
		if err != nil {
			t.Fatal(err)
		}
		if d := tree.Depth(); d > maxDepth {
			t.Errorf("MaxDepth=%d produced depth %d", maxDepth, d)
		}
	}
}

func TestMinSamplesLeaf(t *testing.T) {
	X, y := thresholdData(100)
	tree, err := Train(X, y, 2, Config{MinSamplesLeaf: 10})
	if err != nil {
		t.Fatal(err)
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		if n.IsLeaf() && n.Samples < 10 {
			t.Errorf("leaf with %d samples violates MinSamplesLeaf", n.Samples)
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(tree.Root)
}

func TestPredictIsMajorityOfLeafProperty(t *testing.T) {
	X, y := thresholdData(300)
	tree, err := Train(X, y, 2, Config{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw uint16) bool {
		x := []float64{float64(raw) / 655.35}
		leaf := tree.PredictNode(x)
		// The prediction must be the majority class of the leaf.
		best, bestN := 0, -1
		for c, n := range leaf.Counts {
			if n > bestN {
				best, bestN = c, n
			}
		}
		return tree.Predict(x) == best
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNodeInvariants(t *testing.T) {
	X, y := xorData()
	tree, _ := Train(X, y, 2, Config{})
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		total := 0
		for _, c := range n.Counts {
			total += c
		}
		if total != n.Samples {
			t.Errorf("counts sum %d != samples %d", total, n.Samples)
		}
		if n.Impurity < 0 || n.Impurity > 1 {
			t.Errorf("impurity %g outside [0,1]", n.Impurity)
		}
		if !n.IsLeaf() {
			if n.Left.Samples+n.Right.Samples != n.Samples {
				t.Error("children don't partition parent samples")
			}
			walk(n.Left)
			walk(n.Right)
		}
	}
	walk(tree.Root)
}

func TestPruneToDepth(t *testing.T) {
	X, y := thresholdData(500)
	tree, _ := Train(X, y, 2, Config{})
	full := tree.Depth()
	for d := 0; d <= full; d++ {
		pruned := tree.PruneToDepth(d)
		if pd := pruned.Depth(); pd > d {
			t.Errorf("PruneToDepth(%d) has depth %d", d, pd)
		}
		// Pruning must not change the sample counts at the root.
		if pruned.Root.Samples != tree.Root.Samples {
			t.Error("pruning changed root samples")
		}
	}
	// Pruning never improves training accuracy beyond the full tree.
	p1 := tree.PruneToDepth(1)
	if p1.Accuracy(X, y) > tree.Accuracy(X, y)+1e-12 {
		t.Error("pruned tree more accurate than full tree on training data")
	}
	// Original tree unchanged.
	if tree.Depth() != full {
		t.Error("PruneToDepth mutated the original")
	}
}

func TestPruneNeverDeepensProperty(t *testing.T) {
	X, y := xorData()
	tree, _ := Train(X, y, 2, Config{})
	f := func(dRaw uint8) bool {
		d := int(dRaw) % 10
		return tree.PruneToDepth(d).Depth() <= d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestImportancesSumToOne(t *testing.T) {
	X, y := xorData()
	tree, _ := Train(X, y, 2, Config{})
	imp := tree.Importances()
	var sum float64
	for _, v := range imp {
		if v < 0 {
			t.Errorf("negative importance %g", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importances sum to %g, want 1", sum)
	}
}

func TestImportanceIdentifiesUsefulFeature(t *testing.T) {
	// Feature 0 decides the label; feature 1 is constant noise.
	X, y := thresholdData(300)
	for i := range X {
		X[i] = append(X[i], 7)
	}
	tree, _ := Train(X, y, 2, Config{})
	imp := tree.Importances()
	if imp[0] < 0.99 {
		t.Errorf("informative feature importance = %g, want ~1", imp[0])
	}
	if imp[1] != 0 {
		t.Errorf("constant feature importance = %g, want 0", imp[1])
	}
}

func TestImportancesAllZeroForStump(t *testing.T) {
	// All labels identical -> no split -> zero importances.
	X := [][]float64{{1}, {2}, {3}}
	y := []int{1, 1, 1}
	tree, err := Train(X, y, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Root.IsLeaf() {
		t.Fatal("pure data should give a leaf root")
	}
	for _, v := range tree.Importances() {
		if v != 0 {
			t.Errorf("stump importance %g != 0", v)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	X, y := xorData()
	tree, _ := Train(X, y, 2, Config{FeatureNames: []string{"a", "b"}})
	data, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumFeatures != 2 || back.NumClasses != 2 {
		t.Error("shape lost in round trip")
	}
	for i, x := range X {
		if back.Predict(x) != tree.Predict(x) {
			t.Errorf("prediction %d changed after round trip", i)
		}
	}
	if back.FeatureNames[0] != "a" {
		t.Error("feature names lost")
	}
}

func TestJSONRejectsGarbage(t *testing.T) {
	var tr Tree
	if err := json.Unmarshal([]byte(`{"format":"other"}`), &tr); err == nil {
		t.Error("wrong format accepted")
	}
	if err := json.Unmarshal([]byte(`{"format":"apollo-dtree-v1"}`), &tr); err == nil {
		t.Error("missing root accepted")
	}
	bad := `{"format":"apollo-dtree-v1","num_features":1,"num_classes":2,
	         "root":{"feature":5,"label":0,"left":{"feature":-1,"label":0},"right":{"feature":-1,"label":1}}}`
	if err := json.Unmarshal([]byte(bad), &tr); err == nil {
		t.Error("out-of-range split feature accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	X, y := thresholdData(100)
	tree, _ := Train(X, y, 2, Config{})
	path := filepath.Join(t.TempDir(), "model.json")
	if err := tree.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Accuracy(X, y) != tree.Accuracy(X, y) {
		t.Error("loaded tree disagrees with saved tree")
	}
}

func TestStringRendersConditions(t *testing.T) {
	X, y := thresholdData(100)
	tree, _ := Train(X, y, 2, Config{FeatureNames: []string{"num_indices"}, MaxDepth: 2})
	s := tree.String()
	if len(s) == 0 {
		t.Fatal("empty rendering")
	}
	if want := "if num_indices <= "; !contains(s, want) {
		t.Errorf("rendering lacks %q:\n%s", want, s)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestCountsMetrics(t *testing.T) {
	X, y := xorData()
	tree, _ := Train(X, y, 2, Config{})
	if tree.NumNodes() != tree.NumLeaves()*2-1 {
		t.Errorf("binary tree invariant violated: nodes=%d leaves=%d", tree.NumNodes(), tree.NumLeaves())
	}
}

func TestTrainDeterministic(t *testing.T) {
	X, y := thresholdData(300)
	a, err := Train(X, y, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(X, y, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("training is not deterministic")
	}
}

func TestMarshalIdempotent(t *testing.T) {
	X, y := xorData()
	tree, _ := Train(X, y, 2, Config{})
	d1, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := json.Unmarshal(d1, &back); err != nil {
		t.Fatal(err)
	}
	d2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(d1) != string(d2) {
		t.Error("marshal -> unmarshal -> marshal changed the encoding")
	}
}
