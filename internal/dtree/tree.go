// Package dtree implements the CART-style decision-tree classifier Apollo
// trains off-line and evaluates at every kernel launch.
//
// The paper chooses decision trees for two reasons that this package
// preserves: they convert directly into a handful of conditional
// statements (see package codegen), and they can be made smaller and
// cheaper simply by cutting the tree off at a given depth (PruneToDepth)
// or by training on a reduced feature subset guided by Gini feature
// importance (Importances).
package dtree

import (
	"fmt"
	"strings"
)

// Node is one node of a decision tree. Internal nodes route samples with
// x[Feature] <= Threshold to Left and the rest to Right; leaves predict
// Label.
type Node struct {
	// Feature is the split feature index, or -1 for a leaf.
	Feature int
	// Threshold is the split value (samples with value <= Threshold go
	// left).
	Threshold float64
	// Left and Right are the children (nil for leaves).
	Left, Right *Node
	// Label is the majority class of the training samples reaching the
	// node; it is the prediction when the node acts as a leaf.
	Label int
	// Counts is the per-class histogram of training samples at the node.
	Counts []int
	// Samples is the number of training samples at the node.
	Samples int
	// Impurity is the node's Gini impurity.
	Impurity float64
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Feature < 0 }

// Tree is a trained decision-tree classifier.
type Tree struct {
	Root *Node
	// NumFeatures is the width of input vectors.
	NumFeatures int
	// NumClasses is the number of distinct labels.
	NumClasses int
	// FeatureNames, if set, names each feature for rendering, code
	// generation, and importance reports.
	FeatureNames []string

	importances []float64
}

// Predict returns the predicted class for the feature vector x, walking
// from the root to a leaf. It is the hot-path operation Apollo performs at
// every kernel launch; it allocates nothing.
//
//apollo:hotpath
func (t *Tree) Predict(x []float64) int {
	n := t.Root
	for !n.IsLeaf() {
		if x[n.Feature] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Label
}

// PredictNode returns the leaf reached by x, exposing the class histogram
// for callers that want confidence information.
//
//apollo:hotpath
func (t *Tree) PredictNode(x []float64) *Node {
	n := t.Root
	for !n.IsLeaf() {
		if x[n.Feature] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n
}

// TrailStep is one internal-node comparison on the root-to-leaf path of
// a prediction: which feature was consulted, the value it had, the
// threshold it was compared against, and which way the sample went. A
// trail of steps is the decision's provenance — the flight recorder
// captures it per launch so an operator can see *why* a variant was
// chosen, not just which.
type TrailStep struct {
	// Feature is the split feature index (into the vector handed to
	// PredictTrail; projectors translate it to their source schema).
	Feature int32
	// Right reports whether the sample took the right branch
	// (value > threshold).
	Right bool
	// Threshold is the split value.
	Threshold float64
	// Value is the feature's value in the predicted vector.
	Value float64
}

// PredictTrail evaluates x like Predict while recording the root-to-leaf
// node trail into the caller's buffer. It returns the predicted label
// and the number of steps written; paths deeper than len(trail) keep
// walking but stop recording (steps then equals len(trail)). It
// allocates nothing, so the flight recorder can call it per launch.
//
//apollo:hotpath
func (t *Tree) PredictTrail(x []float64, trail []TrailStep) (label, steps int) {
	n := t.Root
	for !n.IsLeaf() {
		// Written as the negation of Predict's comparison so a NaN value
		// goes right on both paths; `v > threshold` would send it left.
		right := !(x[n.Feature] <= n.Threshold)
		if steps < len(trail) {
			trail[steps] = TrailStep{
				Feature:   int32(n.Feature),
				Right:     right,
				Threshold: n.Threshold,
				Value:     x[n.Feature],
			}
			steps++
		}
		if right {
			n = n.Right
		} else {
			n = n.Left
		}
	}
	return n.Label, steps
}

// Depth returns the maximum depth of the tree (a lone root is depth 0).
func (t *Tree) Depth() int { return depth(t.Root) }

func depth(n *Node) int {
	if n == nil || n.IsLeaf() {
		return 0
	}
	l, r := depth(n.Left), depth(n.Right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// NumNodes returns the total number of nodes.
func (t *Tree) NumNodes() int { return countNodes(t.Root) }

func countNodes(n *Node) int {
	if n == nil {
		return 0
	}
	return 1 + countNodes(n.Left) + countNodes(n.Right)
}

// NumLeaves returns the number of leaves.
func (t *Tree) NumLeaves() int { return countLeaves(t.Root) }

func countLeaves(n *Node) int {
	if n == nil {
		return 0
	}
	if n.IsLeaf() {
		return 1
	}
	return countLeaves(n.Left) + countLeaves(n.Right)
}

// PruneToDepth returns a copy of the tree truncated at the given depth:
// every internal node at depth maxDepth becomes a leaf predicting its
// majority label. This is the paper's model-reduction knob (Fig. 10); the
// pruned tree evaluates at most maxDepth comparisons per decision.
func (t *Tree) PruneToDepth(maxDepth int) *Tree {
	pruned := &Tree{
		NumFeatures:  t.NumFeatures,
		NumClasses:   t.NumClasses,
		FeatureNames: t.FeatureNames,
	}
	pruned.Root = pruneNode(t.Root, maxDepth)
	pruned.importances = computeImportances(pruned.Root, pruned.NumFeatures)
	return pruned
}

func pruneNode(n *Node, budget int) *Node {
	if n == nil {
		return nil
	}
	c := *n
	c.Counts = append([]int(nil), n.Counts...)
	if n.IsLeaf() {
		return &c
	}
	if budget <= 0 {
		c.Feature = -1
		c.Left, c.Right = nil, nil
		return &c
	}
	c.Left = pruneNode(n.Left, budget-1)
	c.Right = pruneNode(n.Right, budget-1)
	return &c
}

// Importances returns the normalized Gini feature importances: each
// feature's total impurity decrease, weighted by the fraction of samples
// reaching the splitting node, normalized to sum to 1 (all zeros if the
// tree never splits). This drives the paper's feature-reduction analysis
// (Fig. 8 and Fig. 9).
func (t *Tree) Importances() []float64 {
	if t.importances == nil {
		t.importances = computeImportances(t.Root, t.NumFeatures)
	}
	return append([]float64(nil), t.importances...)
}

func computeImportances(root *Node, numFeatures int) []float64 {
	imp := make([]float64, numFeatures)
	if root == nil || root.Samples == 0 {
		return imp
	}
	total := float64(root.Samples)
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil || n.IsLeaf() {
			return
		}
		nl, nr := float64(n.Left.Samples), float64(n.Right.Samples)
		nn := float64(n.Samples)
		decrease := n.Impurity - (nl/nn)*n.Left.Impurity - (nr/nn)*n.Right.Impurity
		imp[n.Feature] += (nn / total) * decrease
		walk(n.Left)
		walk(n.Right)
	}
	walk(root)
	var sum float64
	for _, v := range imp {
		sum += v
	}
	if sum > 0 {
		for i := range imp {
			imp[i] /= sum
		}
	}
	return imp
}

// featureName returns a printable name for feature i.
func (t *Tree) featureName(i int) string {
	if i >= 0 && i < len(t.FeatureNames) {
		return t.FeatureNames[i]
	}
	return fmt.Sprintf("x[%d]", i)
}

// String renders the tree as indented text, in the style of the paper's
// Fig. 4 example model.
func (t *Tree) String() string {
	var b strings.Builder
	var walk func(n *Node, indent string)
	walk = func(n *Node, indent string) {
		if n == nil {
			return
		}
		if n.IsLeaf() {
			fmt.Fprintf(&b, "%spredict class %d (samples=%d)\n", indent, n.Label, n.Samples)
			return
		}
		fmt.Fprintf(&b, "%sif %s <= %g:\n", indent, t.featureName(n.Feature), n.Threshold)
		walk(n.Left, indent+"  ")
		fmt.Fprintf(&b, "%selse:\n", indent)
		walk(n.Right, indent+"  ")
	}
	walk(t.Root, "")
	return b.String()
}
