package dtree

import (
	"testing"
	"testing/quick"
)

// PredictTrail must agree with Predict on every input and record the
// exact comparisons the walk performed, in root-to-leaf order.
func TestPredictTrailMatchesPredict(t *testing.T) {
	X, y := thresholdData(200)
	tree, err := Train(X, y, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	trail := make([]TrailStep, 32)
	check := func(v float64) bool {
		x := []float64{v}
		label, steps := tree.PredictTrail(x, trail)
		if label != tree.Predict(x) {
			return false
		}
		if steps <= 0 || steps > tree.Depth() {
			return false
		}
		// Replay the trail against the tree: each step must describe
		// the node actually visited.
		n := tree.Root
		for i := 0; i < steps; i++ {
			s := trail[i]
			if n.IsLeaf() || int(s.Feature) != n.Feature ||
				s.Threshold != n.Threshold || s.Value != x[n.Feature] ||
				s.Right != (x[n.Feature] > n.Threshold) {
				return false
			}
			if s.Right {
				n = n.Right
			} else {
				n = n.Left
			}
		}
		return n.IsLeaf() && n.Label == label
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// A trail buffer shorter than the path truncates recording but still
// predicts correctly.
func TestPredictTrailTruncates(t *testing.T) {
	X, y := xorData()
	tree, err := Train(X, y, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() < 2 {
		t.Fatalf("xor tree depth %d, want >= 2", tree.Depth())
	}
	x := X[0]
	short := make([]TrailStep, 1)
	label, steps := tree.PredictTrail(x, short)
	if steps != 1 {
		t.Errorf("steps = %d, want 1 (buffer-capped)", steps)
	}
	if label != tree.Predict(x) {
		t.Errorf("truncated trail changed the prediction: %d vs %d", label, tree.Predict(x))
	}
	// Zero-length buffer: pure prediction, zero steps.
	if label0, steps0 := tree.PredictTrail(x, nil); steps0 != 0 || label0 != label {
		t.Errorf("nil trail: label=%d steps=%d, want label=%d steps=0", label0, steps0, label)
	}
}

// The trail-recording walk must stay allocation-free: the flight
// recorder calls it on the launch hot path.
func TestPredictTrailAllocFree(t *testing.T) {
	X, y := thresholdData(200)
	tree, err := Train(X, y, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{42}
	trail := make([]TrailStep, 32)
	allocs := testing.AllocsPerRun(100, func() {
		tree.PredictTrail(x, trail)
	})
	if allocs != 0 {
		t.Errorf("PredictTrail allocates %.1f objects per run, want 0", allocs)
	}
}
