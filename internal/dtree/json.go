package dtree

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// jsonNode is the serialized form of a Node.
type jsonNode struct {
	Feature   int       `json:"feature"`
	Threshold float64   `json:"threshold,omitempty"`
	Label     int       `json:"label"`
	Counts    []int     `json:"counts,omitempty"`
	Samples   int       `json:"samples"`
	Impurity  float64   `json:"impurity"`
	Left      *jsonNode `json:"left,omitempty"`
	Right     *jsonNode `json:"right,omitempty"`
}

// jsonTree is the serialized form of a Tree. The format is the repo's
// model exchange format: models are trained off-line, written to disk, and
// loaded by the tuner at runtime without recompiling the application —
// the paper's "pluggable models" property.
type jsonTree struct {
	Format       string    `json:"format"`
	NumFeatures  int       `json:"num_features"`
	NumClasses   int       `json:"num_classes"`
	FeatureNames []string  `json:"feature_names,omitempty"`
	Root         *jsonNode `json:"root"`
}

const formatID = "apollo-dtree-v1"

func toJSONNode(n *Node) *jsonNode {
	if n == nil {
		return nil
	}
	return &jsonNode{
		Feature:   n.Feature,
		Threshold: n.Threshold,
		Label:     n.Label,
		Counts:    n.Counts,
		Samples:   n.Samples,
		Impurity:  n.Impurity,
		Left:      toJSONNode(n.Left),
		Right:     toJSONNode(n.Right),
	}
}

func fromJSONNode(j *jsonNode) (*Node, error) {
	if j == nil {
		return nil, nil
	}
	n := &Node{
		Feature:   j.Feature,
		Threshold: j.Threshold,
		Label:     j.Label,
		Counts:    j.Counts,
		Samples:   j.Samples,
		Impurity:  j.Impurity,
	}
	if j.Feature >= 0 {
		if j.Left == nil || j.Right == nil {
			return nil, fmt.Errorf("dtree: internal node on feature %d missing a child", j.Feature)
		}
		var err error
		if n.Left, err = fromJSONNode(j.Left); err != nil {
			return nil, err
		}
		if n.Right, err = fromJSONNode(j.Right); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// MarshalJSON encodes the tree in the apollo-dtree-v1 format.
func (t *Tree) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonTree{
		Format:       formatID,
		NumFeatures:  t.NumFeatures,
		NumClasses:   t.NumClasses,
		FeatureNames: t.FeatureNames,
		Root:         toJSONNode(t.Root),
	})
}

// UnmarshalJSON decodes a tree from the apollo-dtree-v1 format.
func (t *Tree) UnmarshalJSON(data []byte) error {
	var j jsonTree
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if j.Format != formatID {
		return fmt.Errorf("dtree: unknown model format %q (want %q)", j.Format, formatID)
	}
	if j.Root == nil {
		return fmt.Errorf("dtree: model has no root node")
	}
	root, err := fromJSONNode(j.Root)
	if err != nil {
		return err
	}
	if err := validate(root, j.NumFeatures, j.NumClasses); err != nil {
		return err
	}
	t.Root = root
	t.NumFeatures = j.NumFeatures
	t.NumClasses = j.NumClasses
	t.FeatureNames = j.FeatureNames
	t.importances = nil
	return nil
}

func validate(n *Node, numFeatures, numClasses int) error {
	if n == nil {
		return nil
	}
	if n.Feature >= numFeatures {
		return fmt.Errorf("dtree: node splits on feature %d but model has %d features", n.Feature, numFeatures)
	}
	if n.Label < 0 || n.Label >= numClasses {
		return fmt.Errorf("dtree: node label %d outside [0,%d)", n.Label, numClasses)
	}
	if err := validate(n.Left, numFeatures, numClasses); err != nil {
		return err
	}
	return validate(n.Right, numFeatures, numClasses)
}

// Save writes the tree to the named file as indented JSON.
func (t *Tree) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Write(f); err != nil {
		f.Close() //apollo:errok Close on the error path; the write error is already being returned
		return err
	}
	return f.Close()
}

// Write encodes the tree as indented JSON to w.
func (t *Tree) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// Load reads a tree from the named JSON file.
func Load(path string) (*Tree, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var t Tree
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("dtree: loading %s: %w", path, err)
	}
	return &t, nil
}
