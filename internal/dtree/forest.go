package dtree

import (
	"encoding/json"
	"fmt"
)

// Forest is a bagged ensemble of decision trees with majority voting —
// the "more complex classifier" the paper anticipates needing as the
// number of tuning parameters grows (Section III-B). Each tree trains on
// a bootstrap resample of the data; prediction is the plurality vote.
// Evaluation cost grows linearly with Size, so the single tree remains
// the default deployment model.
type Forest struct {
	Trees       []*Tree
	NumFeatures int
	NumClasses  int
}

// ForestConfig controls forest induction.
type ForestConfig struct {
	// Size is the number of trees (default 15).
	Size int
	// Seed drives the bootstrap resampling.
	Seed uint64
	// Tree configures each member tree.
	Tree Config
}

// TrainForest fits a bagged forest to the samples.
func TrainForest(X [][]float64, y []int, numClasses int, cfg ForestConfig) (*Forest, error) {
	if cfg.Size <= 0 {
		cfg.Size = 15
	}
	if len(X) == 0 {
		return nil, fmt.Errorf("dtree: no training samples")
	}
	f := &Forest{NumFeatures: len(X[0]), NumClasses: numClasses}
	state := cfg.Seed
	if state == 0 {
		state = 0x9e3779b97f4a7c15
	}
	next := func() uint64 {
		state ^= state >> 12
		state ^= state << 25
		state ^= state >> 27
		return state * 0x2545f4914f6cdd1d
	}
	n := len(X)
	for t := 0; t < cfg.Size; t++ {
		bx := make([][]float64, n)
		by := make([]int, n)
		for i := 0; i < n; i++ {
			j := int(next() % uint64(n))
			bx[i] = X[j]
			by[i] = y[j]
		}
		tree, err := Train(bx, by, numClasses, cfg.Tree)
		if err != nil {
			return nil, fmt.Errorf("dtree: training forest member %d: %w", t, err)
		}
		f.Trees = append(f.Trees, tree)
	}
	return f, nil
}

// Predict returns the plurality vote of the member trees (lowest class
// wins ties).
func (f *Forest) Predict(x []float64) int {
	votes := make([]int, f.NumClasses)
	for _, t := range f.Trees {
		votes[t.Predict(x)]++
	}
	best, bestN := 0, -1
	for c, n := range votes {
		if n > bestN {
			best, bestN = c, n
		}
	}
	return best
}

// Accuracy returns the fraction of samples classified correctly.
func (f *Forest) Accuracy(X [][]float64, y []int) float64 {
	if len(X) == 0 {
		return 0
	}
	correct := 0
	for i, x := range X {
		if f.Predict(x) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(X))
}

// Importances averages the member trees' normalized Gini importances.
func (f *Forest) Importances() []float64 {
	imp := make([]float64, f.NumFeatures)
	if len(f.Trees) == 0 {
		return imp
	}
	for _, t := range f.Trees {
		for i, v := range t.Importances() {
			imp[i] += v
		}
	}
	var sum float64
	for _, v := range imp {
		sum += v
	}
	if sum > 0 {
		for i := range imp {
			imp[i] /= sum
		}
	}
	return imp
}

// forestJSON is the serialized form of a Forest.
type forestJSON struct {
	Format      string  `json:"format"`
	NumFeatures int     `json:"num_features"`
	NumClasses  int     `json:"num_classes"`
	Trees       []*Tree `json:"trees"`
}

const forestFormatID = "apollo-forest-v1"

// MarshalJSON encodes the forest.
func (f *Forest) MarshalJSON() ([]byte, error) {
	return json.Marshal(forestJSON{
		Format:      forestFormatID,
		NumFeatures: f.NumFeatures,
		NumClasses:  f.NumClasses,
		Trees:       f.Trees,
	})
}

// UnmarshalJSON decodes a forest.
func (f *Forest) UnmarshalJSON(data []byte) error {
	var j forestJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if j.Format != forestFormatID {
		return fmt.Errorf("dtree: unknown forest format %q", j.Format)
	}
	if len(j.Trees) == 0 {
		return fmt.Errorf("dtree: forest has no trees")
	}
	f.Trees = j.Trees
	f.NumFeatures = j.NumFeatures
	f.NumClasses = j.NumClasses
	return nil
}
