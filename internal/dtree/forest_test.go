package dtree

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"

	"apollo/internal/dataset"
)

// noisyThresholdData builds a 2-feature dataset separable on feature 0
// at 50 with fraction flip of labels flipped.
func noisyThresholdData(n int, flip float64) ([][]float64, []int) {
	X := make([][]float64, n)
	y := make([]int, n)
	rng := dataset.NewRNG(11)
	for i := range X {
		v := rng.Float64() * 100
		X[i] = []float64{v, rng.Float64()}
		if v > 50 {
			y[i] = 1
		}
		if rng.Float64() < flip {
			y[i] = 1 - y[i]
		}
	}
	return X, y
}

func TestForestLearnsThreshold(t *testing.T) {
	X, y := noisyThresholdData(400, 0)
	f, err := TrainForest(X, y, 2, ForestConfig{Size: 9, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Trees) != 9 {
		t.Fatalf("forest has %d trees", len(f.Trees))
	}
	if acc := f.Accuracy(X, y); acc < 0.99 {
		t.Errorf("forest training accuracy %g", acc)
	}
	if f.Predict([]float64{10, 0.5}) != 0 || f.Predict([]float64{90, 0.5}) != 1 {
		t.Error("forest misclassifies obvious points")
	}
}

func TestForestSmoothsNoiseBetterThanDeepTree(t *testing.T) {
	trainX, trainY := noisyThresholdData(300, 0.15)
	// Clean test set from the same concept.
	testX, testY := noisyThresholdData(2000, 0)
	tree, err := Train(trainX, trainY, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	forest, err := TrainForest(trainX, trainY, 2, ForestConfig{Size: 21, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	treeAcc := tree.Accuracy(testX, testY)
	forestAcc := forest.Accuracy(testX, testY)
	if forestAcc < treeAcc-0.01 {
		t.Errorf("forest (%g) should generalize at least as well as a single overfit tree (%g)", forestAcc, treeAcc)
	}
}

func TestForestDeterministicInSeed(t *testing.T) {
	X, y := noisyThresholdData(200, 0.1)
	a, _ := TrainForest(X, y, 2, ForestConfig{Size: 5, Seed: 42})
	b, _ := TrainForest(X, y, 2, ForestConfig{Size: 5, Seed: 42})
	for i := 0; i < 100; i++ {
		x := []float64{float64(i), 0.5}
		if a.Predict(x) != b.Predict(x) {
			t.Fatal("same seed produced different forests")
		}
	}
}

func TestForestImportancesNormalized(t *testing.T) {
	X, y := noisyThresholdData(300, 0)
	f, _ := TrainForest(X, y, 2, ForestConfig{Size: 7, Seed: 1})
	imp := f.Importances()
	var sum float64
	for _, v := range imp {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importances sum to %g", sum)
	}
	if imp[0] < imp[1] {
		t.Error("informative feature should dominate")
	}
}

func TestForestJSONRoundTrip(t *testing.T) {
	X, y := noisyThresholdData(100, 0)
	f, _ := TrainForest(X, y, 2, ForestConfig{Size: 3, Seed: 5})
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	var back Forest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		x := []float64{float64(i * 2), 0.1}
		if back.Predict(x) != f.Predict(x) {
			t.Fatal("round trip changed predictions")
		}
	}
	var bad Forest
	if err := json.Unmarshal([]byte(`{"format":"apollo-forest-v1","trees":[]}`), &bad); err == nil {
		t.Error("empty forest accepted")
	}
}

func TestForestPredictIsPluralityProperty(t *testing.T) {
	X, y := noisyThresholdData(200, 0.2)
	f, _ := TrainForest(X, y, 2, ForestConfig{Size: 7, Seed: 2})
	prop := func(raw uint16) bool {
		x := []float64{float64(raw) / 655.35, 0.5}
		votes := make([]int, 2)
		for _, tr := range f.Trees {
			votes[tr.Predict(x)]++
		}
		want := 0
		if votes[1] > votes[0] {
			want = 1
		}
		return f.Predict(x) == want
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestForestValidation(t *testing.T) {
	if _, err := TrainForest(nil, nil, 2, ForestConfig{}); err == nil {
		t.Error("empty training set accepted")
	}
}
