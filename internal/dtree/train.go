package dtree

import (
	"fmt"
	"sort"
)

// Config controls tree induction.
type Config struct {
	// MaxDepth caps tree depth (0 means unlimited).
	MaxDepth int
	// MinSamplesSplit is the minimum number of samples a node needs to
	// be considered for splitting (default 2).
	MinSamplesSplit int
	// MinSamplesLeaf is the minimum number of samples each child of a
	// split must receive (default 1).
	MinSamplesLeaf int
	// MinImpurityDecrease is the minimum weighted impurity decrease a
	// split must achieve (default 0, i.e. any positive decrease).
	MinImpurityDecrease float64
	// FeatureNames optionally names features for rendering and codegen.
	FeatureNames []string
}

func (c Config) withDefaults() Config {
	if c.MinSamplesSplit < 2 {
		c.MinSamplesSplit = 2
	}
	if c.MinSamplesLeaf < 1 {
		c.MinSamplesLeaf = 1
	}
	return c
}

// Train fits a CART decision tree to the samples X with labels y in
// [0, numClasses). Splits minimize Gini impurity; thresholds are midpoints
// between adjacent distinct feature values; induction is fully
// deterministic (all features considered at every node, first-best split
// wins ties by lowest feature index).
func Train(X [][]float64, y []int, numClasses int, cfg Config) (*Tree, error) {
	if len(X) == 0 {
		return nil, fmt.Errorf("dtree: no training samples")
	}
	if len(X) != len(y) {
		return nil, fmt.Errorf("dtree: %d samples but %d labels", len(X), len(y))
	}
	if numClasses < 2 {
		return nil, fmt.Errorf("dtree: need at least 2 classes, got %d", numClasses)
	}
	numFeatures := len(X[0])
	for i, x := range X {
		if len(x) != numFeatures {
			return nil, fmt.Errorf("dtree: sample %d has %d features, want %d", i, len(x), numFeatures)
		}
	}
	for i, label := range y {
		if label < 0 || label >= numClasses {
			return nil, fmt.Errorf("dtree: sample %d has label %d outside [0,%d)", i, label, numClasses)
		}
	}
	cfg = cfg.withDefaults()

	b := &builder{X: X, y: y, numClasses: numClasses, cfg: cfg}
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	root := b.build(idx, 0)
	t := &Tree{
		Root:         root,
		NumFeatures:  numFeatures,
		NumClasses:   numClasses,
		FeatureNames: cfg.FeatureNames,
	}
	t.importances = computeImportances(root, numFeatures)
	return t, nil
}

type builder struct {
	X          [][]float64
	y          []int
	numClasses int
	cfg        Config
}

// classCounts tallies labels for the samples at idx.
func (b *builder) classCounts(idx []int) []int {
	counts := make([]int, b.numClasses)
	for _, i := range idx {
		counts[b.y[i]]++
	}
	return counts
}

// gini returns the Gini impurity of a class histogram with total samples n.
func gini(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	imp := 1.0
	fn := float64(n)
	for _, c := range counts {
		p := float64(c) / fn
		imp -= p * p
	}
	return imp
}

// majority returns the most frequent class (lowest index wins ties).
func majority(counts []int) int {
	best, bestN := 0, -1
	for c, n := range counts {
		if n > bestN {
			best, bestN = c, n
		}
	}
	return best
}

type split struct {
	feature   int
	threshold float64
	decrease  float64 // impurity decrease, weighted within the node
	leftIdx   []int
	rightIdx  []int
}

func (b *builder) build(idx []int, depth int) *Node {
	counts := b.classCounts(idx)
	node := &Node{
		Feature:  -1,
		Label:    majority(counts),
		Counts:   counts,
		Samples:  len(idx),
		Impurity: gini(counts, len(idx)),
	}
	if node.Impurity == 0 ||
		len(idx) < b.cfg.MinSamplesSplit ||
		(b.cfg.MaxDepth > 0 && depth >= b.cfg.MaxDepth) {
		return node
	}
	best := b.bestSplit(idx, node.Impurity)
	if best == nil {
		return node
	}
	node.Feature = best.feature
	node.Threshold = best.threshold
	node.Left = b.build(best.leftIdx, depth+1)
	node.Right = b.build(best.rightIdx, depth+1)
	return node
}

// bestSplit scans every feature for the split with the greatest Gini
// decrease. It returns nil when no split satisfies the configuration.
func (b *builder) bestSplit(idx []int, parentImpurity float64) *split {
	n := len(idx)
	numFeatures := len(b.X[idx[0]])
	var best *split

	order := make([]int, n)
	leftCounts := make([]int, b.numClasses)
	rightCounts := make([]int, b.numClasses)

	for f := 0; f < numFeatures; f++ {
		copy(order, idx)
		feat := f
		sort.Slice(order, func(a, c int) bool {
			return b.X[order[a]][feat] < b.X[order[c]][feat]
		})
		// All samples start on the right; move them left one by one.
		for i := range leftCounts {
			leftCounts[i] = 0
		}
		copy(rightCounts, b.classCounts(order))

		for i := 0; i < n-1; i++ {
			label := b.y[order[i]]
			leftCounts[label]++
			rightCounts[label]--
			v, next := b.X[order[i]][f], b.X[order[i+1]][f]
			if v == next {
				continue // can't split between identical values
			}
			nl, nr := i+1, n-i-1
			if nl < b.cfg.MinSamplesLeaf || nr < b.cfg.MinSamplesLeaf {
				continue
			}
			decrease := parentImpurity -
				(float64(nl)/float64(n))*gini(leftCounts, nl) -
				(float64(nr)/float64(n))*gini(rightCounts, nr)
			if decrease <= b.cfg.MinImpurityDecrease {
				continue
			}
			if best == nil || decrease > best.decrease {
				best = &split{
					feature:   f,
					threshold: v + (next-v)/2,
					decrease:  decrease,
				}
			}
		}
	}
	if best == nil {
		return nil
	}
	// Partition the indices by the winning split.
	for _, i := range idx {
		if b.X[i][best.feature] <= best.threshold {
			best.leftIdx = append(best.leftIdx, i)
		} else {
			best.rightIdx = append(best.rightIdx, i)
		}
	}
	return best
}

// Accuracy returns the fraction of samples the tree classifies correctly.
func (t *Tree) Accuracy(X [][]float64, y []int) float64 {
	if len(X) == 0 {
		return 0
	}
	correct := 0
	for i, x := range X {
		if t.Predict(x) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(X))
}
