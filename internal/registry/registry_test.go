package registry

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"apollo/internal/core"
	"apollo/internal/dataset"
	"apollo/internal/features"
	"apollo/internal/raja"
)

// testModel trains a small policy model. With parallelWins, the parallel
// variant is fastest at every size (so the tree predicts omp everywhere);
// otherwise the usual crossover (small launches sequential) emerges.
func testModel(t testing.TB, parallelWins bool) *core.Model {
	t.Helper()
	schema := features.TableI()
	frame := dataset.NewFrame(core.RecordColumns(schema)...)
	ni := schema.Index(features.NumIndices)
	for _, n := range []int{32, 256, 2048, 16384, 131072} {
		for _, pol := range []raja.Policy{raja.SeqExec, raja.OmpParallelForExec} {
			row := make([]float64, schema.Len()+3)
			row[ni] = float64(n)
			row[schema.Len()] = float64(pol)
			seqNS := float64(n) * 10
			ompNS := 8000 + float64(n)*10/8
			if parallelWins {
				seqNS, ompNS = float64(n)*100, float64(n)
			}
			if pol == raja.SeqExec {
				row[schema.Len()+2] = seqNS
			} else {
				row[schema.Len()+2] = ompNS
			}
			frame.AddRow(row)
		}
	}
	set, err := core.Label(frame, schema, core.ExecutionPolicy)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Train(set, core.TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPublishAssignsMonotonicVersions(t *testing.T) {
	r := New()
	m := testModel(t, false)
	e1, err := r.Publish("lulesh/execution_policy", m)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := r.Publish("lulesh/execution_policy", m)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Version != 1 || e2.Version != 2 {
		t.Errorf("versions = %d, %d; want 1, 2", e1.Version, e2.Version)
	}
	got, ok := r.Get("lulesh/execution_policy")
	if !ok || got.Version != 2 {
		t.Errorf("Get returned version %d, want 2", got.Version)
	}
	if got.SchemaHash != m.SchemaHash() {
		t.Error("schema hash not stamped")
	}
	if names := r.Names(); len(names) != 1 || names[0] != "lulesh/execution_policy" {
		t.Errorf("Names = %v", names)
	}
}

func TestValidateNameRejectsTraversal(t *testing.T) {
	for _, bad := range []string{"", "..", "a/../b", "/abs", "trail/", "a//b", "sp ace", "semi;colon", "a/./b"} {
		if err := ValidateName(bad); err == nil {
			t.Errorf("name %q accepted", bad)
		}
	}
	for _, good := range []string{"policy", "lulesh/execution_policy", "app/kernel-group/chunk_size", "v1.2_x-Y"} {
		if err := ValidateName(good); err != nil {
			t.Errorf("name %q rejected: %v", good, err)
		}
	}
}

func TestDiskPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := testModel(t, false)
	if _, err := r1.Publish("ares/execution_policy", m); err != nil {
		t.Fatal(err)
	}
	if _, err := r1.Publish("ares/execution_policy", m); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "ares", "execution_policy.v2.json")); err != nil {
		t.Fatalf("version file missing: %v", err)
	}

	// A fresh registry over the same directory resumes at the highest
	// persisted version and keeps counting monotonically.
	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := r2.Get("ares/execution_policy")
	if !ok || e.Version != 2 {
		t.Fatalf("reloaded version = %d, want 2", e.Version)
	}
	if e.Model.Predict(make([]float64, e.Model.Schema.Len())) != e.Model.Predict(make([]float64, m.Schema.Len())) {
		t.Error("reloaded model does not evaluate")
	}
	e3, err := r2.Publish("ares/execution_policy", m)
	if err != nil {
		t.Fatal(err)
	}
	if e3.Version != 3 {
		t.Errorf("post-reload publish version = %d, want 3", e3.Version)
	}
}

func TestScanHotReloadsDroppedFile(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// An operator drops a bare model file into the registry directory.
	m := testModel(t, false)
	data, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "dropped.v7.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := r.scan()
	if err != nil || n != 1 {
		t.Fatalf("scan loaded %d (%v), want 1", n, err)
	}
	e, ok := r.Get("dropped")
	if !ok || e.Version != 7 {
		t.Fatalf("dropped model version = %d, want 7 from filename", e.Version)
	}

	// Editing the same file in place republished at a higher version.
	m2 := testModel(t, true)
	data2, _ := m2.MarshalJSON()
	if err := os.WriteFile(path, data2, 0o644); err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
	if n, err := r.scan(); err != nil || n != 1 {
		t.Fatalf("rescan loaded %d (%v), want 1", n, err)
	}
	e2, _ := r.Get("dropped")
	if e2.Version <= e.Version {
		t.Errorf("in-place edit version %d did not advance past %d", e2.Version, e.Version)
	}

	// Garbage files are ignored without wedging the registry.
	if err := os.WriteFile(filepath.Join(dir, "junk.v1.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.scan(); err != nil {
		t.Fatalf("scan errored on junk: %v", err)
	}
	if _, ok := r.Get("junk"); ok {
		t.Error("junk file registered")
	}
}

func TestWatchPublishesOnTick(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reloaded := make(chan int, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go r.Watch(ctx, 5*time.Millisecond, func(n int) {
		select {
		case reloaded <- n:
		default:
		}
	})
	data, _ := testModel(t, false).MarshalJSON()
	if err := os.WriteFile(filepath.Join(dir, "hot.v1.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	select {
	case <-reloaded:
	case <-time.After(5 * time.Second):
		t.Fatal("watcher never reloaded the dropped file")
	}
	if _, ok := r.Get("hot"); !ok {
		t.Error("watched model not registered")
	}
}

func TestConcurrentPublishAndGet(t *testing.T) {
	r := New()
	m := testModel(t, false)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			names := []string{"a", "b", "c/d"}
			for i := 0; i < 25; i++ {
				if _, err := r.Publish(names[(g+i)%len(names)], m); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if e, ok := r.Get("a"); ok && (e.Model == nil || e.Version < 1) {
					t.Error("torn read")
					return
				}
				r.Names()
			}
		}()
	}
	wg.Wait()
	e, ok := r.Get("a")
	if !ok || e.Version < 1 {
		t.Fatal("publishes lost")
	}
}

func TestPublishRejectsIncompleteModel(t *testing.T) {
	r := New()
	if _, err := r.Publish("x", &core.Model{}); err == nil {
		t.Error("incomplete model accepted")
	}
	if _, err := r.PublishRaw("x", []byte("{}")); err == nil {
		t.Error("empty JSON accepted")
	}
}

func TestScanSkipsCorruptModelFileAndLogsOnce(t *testing.T) {
	dir := t.TempDir()
	data, _ := testModel(t, false).MarshalJSON()
	// A truncated model file right next to a valid one.
	if err := os.WriteFile(filepath.Join(dir, "bad.v1.json"), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "good.v1.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}

	r := New()
	r.dir = dir
	var logs []string
	r.SetLogf(func(format string, args ...any) {
		logs = append(logs, fmt.Sprintf(format, args...))
	})
	n, err := r.scan()
	if err != nil {
		t.Fatalf("scan with corrupt neighbor failed: %v", err)
	}
	if n != 1 {
		t.Errorf("loaded %d models, want 1", n)
	}
	if _, ok := r.Get("good"); !ok {
		t.Error("valid model not loaded")
	}
	if _, ok := r.Get("bad"); ok {
		t.Error("corrupt model loaded")
	}
	if len(logs) != 1 || !strings.Contains(logs[0], "bad.v1.json") {
		t.Errorf("logs = %q, want one line naming bad.v1.json", logs)
	}

	// The corrupt file is remembered: further polls stay silent until it
	// changes on disk.
	if _, err := r.scan(); err != nil {
		t.Fatal(err)
	}
	if len(logs) != 1 {
		t.Errorf("repeat scan logged again: %q", logs)
	}
}
