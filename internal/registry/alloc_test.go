package registry

import (
	"testing"

	"apollo/internal/core"
	"apollo/internal/dtree"
	"apollo/internal/features"
)

// Registry.Get is //apollo:hotpath — the serving daemon resolves it on
// every decision request — so its zero-allocation claim is pinned both
// statically (apollo-vet) and here at runtime.
func TestGetAllocationFree(t *testing.T) {
	r := New()
	m := &core.Model{
		Param:  core.ExecutionPolicy,
		Schema: features.TableI(),
		Tree:   &dtree.Tree{Root: &dtree.Node{Feature: -1, Label: 1}},
	}
	if _, err := r.Publish("guard", m); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok := r.Get("guard"); !ok {
			t.Fatal("model vanished")
		}
	})
	if allocs != 0 {
		t.Errorf("Registry.Get allocates %.1f objects per call, want 0", allocs)
	}
}
