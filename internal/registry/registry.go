// Package registry is a concurrent, versioned store of trained tuning
// models — the serving-side realization of the paper's central claim that
// models are reusable artifacts. Each model is published under a name
// (conventionally app/kernel-group plus the predicted parameter, e.g.
// "lulesh/execution_policy") and receives a monotonically increasing
// version. Publishes swap one atomic pointer, so readers — the HTTP
// serving layer answering prediction and fetch traffic — never block and
// always observe a fully formed entry.
//
// A registry may be disk-backed: every publish persists a versioned
// envelope file under the registry directory, the highest version per
// name is loaded back at open, and a polling watcher hot-reloads files
// that appear or change on disk (an operator can drop a retrained model
// into the directory and every connected tuner picks it up).
package registry

import (
	"context"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"apollo/internal/core"
	"apollo/internal/ctree"
)

// Entry is one published model version. Entries are immutable: a
// republish creates a new entry at a higher version.
type Entry struct {
	// Name is the registry key the model was published under.
	Name string
	// Version is the monotonic publish counter for the name.
	Version int
	// ETag is a content hash of Raw, quoted for direct use in HTTP
	// ETag / If-None-Match headers.
	ETag string
	// SchemaHash fingerprints the model's prediction contract.
	SchemaHash string
	// Model is the deserialized model, ready to evaluate.
	Model *core.Model
	// Compiled is the model's tree flattened at publish time (see
	// package ctree); the serving layer's cache-miss predicts walk this,
	// never the interpreted nodes.
	Compiled *ctree.Tree
	// Lineage is the provenance block stamped at train time (nil for
	// hand-published or legacy models). It rides inside Raw, so it
	// survives persistence, sync-pull, and client fetch unchanged.
	Lineage *core.Lineage
	// Raw is the canonical envelope JSON as persisted and served.
	Raw []byte
}

// PredictClass evaluates x (model-schema layout) through the compiled
// tree, falling back to the interpreted walk for the rare entry whose
// tree the compiler rejected.
//
//apollo:hotpath
func (e *Entry) PredictClass(x []float64) int {
	if e.Compiled != nil {
		return e.Compiled.Predict(x)
	}
	return e.Model.Predict(x)
}

// Registry is the store. Reads are lock-free (one atomic map load plus
// one atomic entry load); publishes serialize on a mutex.
type Registry struct {
	dir string // "" = memory-only

	// mu guards publishes and the byName map identity.
	mu      sync.Mutex //apollo:lockrank 30
	byName  atomic.Pointer[map[string]*atomic.Pointer[Entry]]
	watched map[string]fileState // path -> last seen state, used by the watcher
	logf    func(format string, args ...any)
}

// fileState identifies a disk file revision cheaply.
type fileState struct {
	modTime time.Time
	size    int64
}

// New returns an empty, memory-only registry.
func New() *Registry {
	r := &Registry{logf: func(string, ...any) {}}
	empty := map[string]*atomic.Pointer[Entry]{}
	r.byName.Store(&empty)
	r.watched = map[string]fileState{}
	return r
}

// SetLogf routes the watcher's skip diagnostics (corrupt model files,
// unreadable subtrees) somewhere visible. The default discards them.
func (r *Registry) SetLogf(logf func(format string, args ...any)) {
	if logf != nil {
		r.logf = logf
	}
}

// Open returns a registry persisted under dir, creating the directory if
// needed and loading the highest version of every model already present.
func Open(dir string) (*Registry, error) {
	r := New()
	r.dir = dir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if _, err := r.scan(); err != nil {
		return nil, err
	}
	return r, nil
}

// Dir returns the backing directory ("" for a memory-only registry).
func (r *Registry) Dir() string { return r.dir }

// ValidateName checks a model name: slash-separated segments of
// [A-Za-z0-9._-], no empty or ".."/"." segments, at most 200 bytes. The
// slashes let names mirror the app/kernel-group hierarchy and map
// directly onto the registry's on-disk layout.
func ValidateName(name string) error {
	if name == "" || len(name) > 200 {
		return fmt.Errorf("registry: invalid model name %q", name)
	}
	for _, seg := range strings.Split(name, "/") {
		if seg == "" || seg == "." || seg == ".." {
			return fmt.Errorf("registry: invalid model name %q", name)
		}
		for _, c := range seg {
			switch {
			case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
				c == '.', c == '_', c == '-':
			default:
				return fmt.Errorf("registry: invalid character %q in model name %q", c, name)
			}
		}
	}
	return nil
}

// Get returns the current entry for name. It is lock-free and safe to
// call from any number of goroutines concurrently with publishes.
//
//apollo:hotpath
func (r *Registry) Get(name string) (*Entry, bool) {
	m := *r.byName.Load()
	p, ok := m[name]
	if !ok {
		return nil, false
	}
	e := p.Load()
	return e, e != nil
}

// Names returns the sorted registered model names.
func (r *Registry) Names() []string {
	m := *r.byName.Load()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered models.
func (r *Registry) Len() int { return len(*r.byName.Load()) }

// Publish registers a new version of the model under name, persisting it
// when the registry is disk-backed, and returns the new entry.
func (r *Registry) Publish(name string, m *core.Model) (*Entry, error) {
	return r.PublishLineage(name, m, nil)
}

// PublishLineage is Publish with a provenance block: lin (optional) is
// stamped into the persisted envelope, so the model's origin — parent
// version, training window, drift trigger, duel outcome, loop ID —
// travels with the artifact to every replica and client.
//
//apollo:lockok publishes are rare and intentionally serialized under r.mu so the disk and in-memory views can never diverge
func (r *Registry) PublishLineage(name string, m *core.Model, lin *core.Lineage) (*Entry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.publishLocked(name, 0, m, lin)
}

// PublishRaw registers data, which must parse as a model or an envelope.
// An envelope's own version is honored when it is ahead of the current
// one (so watcher reloads keep file and registry versions aligned);
// otherwise the next monotonic version is assigned.
//
//apollo:lockok publishes are rare and intentionally serialized under r.mu so the disk and in-memory views can never diverge
func (r *Registry) PublishRaw(name string, data []byte) (*Entry, error) {
	env, err := core.ParseModelOrEnvelope(data)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.publishLocked(name, env.Version, env.Model, env.Lineage)
}

// publishLocked assigns max(wantVersion, current+1) and swaps the entry
// in. Callers hold r.mu.
func (r *Registry) publishLocked(name string, wantVersion int, m *core.Model, lin *core.Lineage) (*Entry, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	if m == nil || m.Tree == nil || m.Schema == nil {
		return nil, fmt.Errorf("registry: publishing an incomplete model under %q", name)
	}
	version := wantVersion
	if cur, ok := r.Get(name); ok && version <= cur.Version {
		version = cur.Version + 1
	}
	if version < 1 {
		version = 1
	}
	// Compile before accepting: a model the compiler rejects is
	// structurally broken (missing children, out-of-range features) and
	// must not be published at all.
	ct, err := ctree.Compile(m.Tree)
	if err != nil {
		return nil, fmt.Errorf("registry: publishing %q: %w", name, err)
	}
	env := core.WrapModel(name, version, m)
	env.Lineage = lin
	raw, err := env.MarshalJSON()
	if err != nil {
		return nil, err
	}
	raw = append(raw, '\n')
	e := &Entry{
		Name:       name,
		Version:    version,
		ETag:       contentETag(raw),
		SchemaHash: m.SchemaHash(),
		Model:      m,
		Compiled:   ct,
		Lineage:    lin,
		Raw:        raw,
	}
	if r.dir != "" {
		path := r.versionPath(name, version)
		if err := writeFileAtomic(path, raw); err != nil {
			return nil, err
		}
		if st, err := os.Stat(path); err == nil {
			r.watched[path] = fileState{modTime: st.ModTime(), size: st.Size()}
		}
	}
	r.install(name, e)
	return e, nil
}

// install swaps the entry in, copying the name map only when the name is
// new (publishes of existing names touch just that name's pointer).
func (r *Registry) install(name string, e *Entry) {
	m := *r.byName.Load()
	if p, ok := m[name]; ok {
		p.Store(e)
		return
	}
	next := make(map[string]*atomic.Pointer[Entry], len(m)+1)
	for k, v := range m {
		next[k] = v
	}
	p := &atomic.Pointer[Entry]{}
	p.Store(e)
	next[name] = p
	r.byName.Store(&next)
}

// versionPath is the on-disk location of one model version:
// <dir>/<name>.v<version>.json, with the name's slashes as directories.
func (r *Registry) versionPath(name string, version int) string {
	return filepath.Join(r.dir, filepath.FromSlash(name)+".v"+strconv.Itoa(version)+".json")
}

// parseVersionPath inverts versionPath, returning the model name and
// version of a registry file, or ok=false for unrelated files.
func (r *Registry) parseVersionPath(path string) (name string, version int, ok bool) {
	rel, err := filepath.Rel(r.dir, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", 0, false
	}
	rel = filepath.ToSlash(rel)
	if !strings.HasSuffix(rel, ".json") {
		return "", 0, false
	}
	stem := strings.TrimSuffix(rel, ".json")
	i := strings.LastIndex(stem, ".v")
	if i <= 0 {
		return "", 0, false
	}
	v, err := strconv.Atoi(stem[i+2:])
	if err != nil || v < 0 {
		return "", 0, false
	}
	name = stem[:i]
	if ValidateName(name) != nil {
		return "", 0, false
	}
	return name, v, true
}

// scan walks the registry directory and loads every new or changed model
// file, returning how many entries it (re)published. At open it sees all
// files as new and loads the highest version per name; afterwards the
// watcher calls it to hot-reload external changes.
func (r *Registry) scan() (int, error) {
	if r.dir == "" {
		return 0, nil
	}
	type found struct {
		path    string
		name    string
		version int
		state   fileState
	}
	var changed []found
	err := filepath.Walk(r.dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			// One unreadable file or subtree must not stop the whole
			// registry from reloading: log it and keep walking.
			r.logf("registry: skipping %s: %v", path, err)
			if info != nil && info.IsDir() {
				return filepath.SkipDir
			}
			return nil
		}
		if info.IsDir() {
			return nil
		}
		name, version, ok := r.parseVersionPath(path)
		if !ok {
			return nil
		}
		st := fileState{modTime: info.ModTime(), size: info.Size()}
		r.mu.Lock()
		prev, seen := r.watched[path]
		r.mu.Unlock()
		if seen && prev == st {
			return nil
		}
		changed = append(changed, found{path: path, name: name, version: version, state: st})
		return nil
	})
	if err != nil {
		return 0, err
	}
	// Load in (name, version) order so the highest version of each name
	// wins and version numbers stay aligned with filenames.
	sort.Slice(changed, func(i, j int) bool {
		if changed[i].name != changed[j].name {
			return changed[i].name < changed[j].name
		}
		return changed[i].version < changed[j].version
	})
	loaded := 0
	for _, f := range changed {
		data, err := os.ReadFile(f.path)
		if err != nil {
			continue // raced with a writer; next poll retries
		}
		r.mu.Lock()
		r.watched[f.path] = f.state
		if cur, ok := r.Get(f.name); ok && contentETag(data) == cur.ETag {
			r.mu.Unlock()
			continue // our own publish, or an identical copy
		}
		env, err := core.ParseModelOrEnvelope(data)
		if err != nil {
			r.mu.Unlock()
			// Corrupt or truncated model file: ignore it and keep
			// serving what we have. watched remembers this revision, so
			// the error logs once per file change, not once per poll.
			r.logf("registry: ignoring corrupt model file %s: %v", f.path, err)
			continue
		}
		ct, err := ctree.Compile(env.Model.Tree)
		if err != nil {
			r.mu.Unlock()
			// Parsed but uncompilable: treat it exactly like a corrupt
			// file — keep serving what we have.
			r.logf("registry: ignoring uncompilable model file %s: %v", f.path, err)
			continue
		}
		version := env.Version
		if version == 0 {
			version = f.version
		}
		// Reload in place without re-persisting: the bytes came from disk.
		if cur, ok := r.Get(f.name); ok && version <= cur.Version {
			version = cur.Version + 1
		}
		if version < 1 {
			version = 1
		}
		r.install(f.name, &Entry{
			Name:       f.name,
			Version:    version,
			ETag:       contentETag(data),
			SchemaHash: env.Model.SchemaHash(),
			Model:      env.Model,
			Compiled:   ct,
			Lineage:    env.Lineage,
			Raw:        data,
		})
		loaded++
		r.mu.Unlock()
	}
	return loaded, nil
}

// Watch polls the registry directory every interval and hot-reloads new
// or changed model files until ctx is cancelled. It returns immediately
// for memory-only registries. onReload (optional) is called after every
// poll that loaded at least one model, with the count.
func (r *Registry) Watch(ctx context.Context, interval time.Duration, onReload func(n int)) {
	if r.dir == "" || interval <= 0 {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if n, err := r.scan(); err == nil && n > 0 && onReload != nil {
				onReload(n)
			}
		}
	}
}

// contentETag hashes raw bytes into a quoted HTTP entity tag.
func contentETag(data []byte) string {
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%q", fmt.Sprintf("%016x", h.Sum64()))
}

// writeFileAtomic writes data via a temp file + rename so readers (and
// the watcher of another process) never observe a torn file.
func writeFileAtomic(path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()           //apollo:errok best-effort cleanup after a failed atomic write; the original error is returned
		os.Remove(tmp.Name()) //apollo:errok best-effort cleanup after a failed atomic write; the original error is returned
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name()) //apollo:errok best-effort cleanup after a failed atomic write; the original error is returned
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name()) //apollo:errok best-effort cleanup after a failed atomic write; the original error is returned
		return err
	}
	return nil
}
