package team

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestParallelForCoversEveryIndexOnce(t *testing.T) {
	tm := New(4)
	defer tm.Close()
	for _, tc := range []struct{ lo, hi, chunk int }{
		{0, 100, 7},
		{0, 100, 0},  // default chunk
		{0, 1, 1},    // single iteration
		{5, 23, 100}, // chunk larger than range
		{0, 1000, 1}, // chunk 1
		{-10, 10, 3}, // negative lo
		{0, 4, 1},    // exactly one chunk per worker
		{0, 0, 4},    // empty
		{10, 5, 2},   // inverted (empty)
	} {
		n := tc.hi - tc.lo
		if n < 0 {
			n = 0
		}
		counts := make([]int32, n)
		tm.ParallelFor(tc.lo, tc.hi, tc.chunk, func(i int) {
			atomic.AddInt32(&counts[i-tc.lo], 1)
		})
		for k, c := range counts {
			if c != 1 {
				t.Errorf("lo=%d hi=%d chunk=%d: index %d executed %d times", tc.lo, tc.hi, tc.chunk, tc.lo+k, c)
			}
		}
	}
}

func TestParallelForCoverageProperty(t *testing.T) {
	tm := New(3)
	defer tm.Close()
	f := func(nRaw uint16, chunkRaw uint8) bool {
		n := int(nRaw)%2000 + 1
		chunk := int(chunkRaw) % 70 // 0 = default
		counts := make([]int32, n)
		tm.ParallelFor(0, n, chunk, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for _, c := range counts {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestParallelForBlocksUntilDone(t *testing.T) {
	tm := New(2)
	defer tm.Close()
	var sum int64
	tm.ParallelFor(0, 10000, 13, func(i int) {
		atomic.AddInt64(&sum, int64(i))
	})
	want := int64(10000) * 9999 / 2
	if sum != want {
		t.Errorf("sum after join = %d, want %d (join barrier leaked work)", sum, want)
	}
}

func TestDefaultWorkerCount(t *testing.T) {
	tm := New(0)
	defer tm.Close()
	if tm.Size() < 1 {
		t.Errorf("Size = %d, want >= 1", tm.Size())
	}
}

func TestRegionsCounter(t *testing.T) {
	tm := New(2)
	defer tm.Close()
	before := tm.Regions()
	tm.ParallelFor(0, 10, 0, func(int) {})
	tm.ParallelFor(0, 10, 0, func(int) {})
	tm.ParallelFor(0, 0, 0, func(int) {}) // empty: no region
	if got := tm.Regions() - before; got != 2 {
		t.Errorf("Regions delta = %d, want 2", got)
	}
}

func TestCloseIdempotentAndPanicsAfter(t *testing.T) {
	tm := New(2)
	tm.Close()
	tm.Close() // must not panic
	defer func() {
		if recover() == nil {
			t.Error("ParallelFor after Close should panic")
		}
	}()
	tm.ParallelFor(0, 10, 0, func(int) {})
}

func TestChunkAssignmentConservesWork(t *testing.T) {
	f := func(nRaw uint16, chunkRaw uint8, workersRaw uint8) bool {
		n := int(nRaw) % 5000
		chunk := int(chunkRaw) % 200
		workers := int(workersRaw)%16 + 1
		chunks, iters := ChunkAssignment(n, chunk, workers)
		totalIters, totalChunks := 0, 0
		for w := 0; w < workers; w++ {
			totalIters += iters[w]
			totalChunks += chunks[w]
		}
		if totalIters != n {
			return false
		}
		if n > 0 {
			c := chunk
			if c <= 0 {
				c = (n + workers - 1) / workers
			}
			if totalChunks != (n+c-1)/c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestChunkAssignmentRoundRobinBalance(t *testing.T) {
	// 10 chunks over 4 workers: workers 0,1 get 3 chunks; 2,3 get 2.
	chunks, _ := ChunkAssignment(100, 10, 4)
	want := []int{3, 3, 2, 2}
	for w, c := range chunks {
		if c != want[w] {
			t.Errorf("worker %d got %d chunks, want %d", w, c, want[w])
		}
	}
}

func TestChunkAssignmentMatchesExecution(t *testing.T) {
	// The static schedule the team executes must agree with the
	// assignment the machine model assumes.
	workers, n, chunk := 4, 103, 10
	tm := New(workers)
	defer tm.Close()
	var executed int64
	tm.ParallelFor(0, n, chunk, func(i int) { atomic.AddInt64(&executed, 1) })
	_, iters := ChunkAssignment(n, chunk, workers)
	total := 0
	for _, it := range iters {
		total += it
	}
	if int(executed) != total {
		t.Errorf("executed %d iterations, assignment says %d", executed, total)
	}
}
