// Package team implements a persistent goroutine worker team with
// OpenMP-style static chunked scheduling.
//
// It is the execution substrate behind the parallel RAJA policies in this
// repository, playing the role OpenMP plays in the paper: a parallel-for
// with a fixed fork/join cost, a static schedule, and a tunable chunk
// parameter controlling how many consecutive iterations each assignment
// hands to a worker (the paper's second tuning parameter). Workers persist
// across parallel regions, as OpenMP threads do, so the fork cost is a
// wakeup, not a thread spawn.
package team

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// task describes one parallel-for region dispatched to the team.
type task struct {
	lo, hi int // iteration space [lo, hi)
	chunk  int
	body   func(i int)
	wg     *sync.WaitGroup
}

// Team is a fixed-size pool of worker goroutines executing parallel-for
// regions with static chunked scheduling. A Team must be created with New
// and released with Close. Only one parallel region may execute at a time
// (matching a single OpenMP thread team); ParallelFor is not reentrant.
type Team struct {
	size    int
	work    []chan task
	done    sync.WaitGroup
	closed  atomic.Bool
	regions atomic.Uint64
}

// New creates a team with n workers. If n <= 0, runtime.GOMAXPROCS(0)
// workers are created.
func New(n int) *Team {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	t := &Team{size: n, work: make([]chan task, n)}
	t.done.Add(n)
	for w := 0; w < n; w++ {
		t.work[w] = make(chan task, 1)
		go t.worker(w)
	}
	return t
}

// Size returns the number of workers in the team.
func (t *Team) Size() int { return t.size }

// Regions returns the number of parallel regions executed so far.
func (t *Team) Regions() uint64 { return t.regions.Load() }

func (t *Team) worker(id int) {
	defer t.done.Done()
	for tk := range t.work[id] {
		runChunks(id, t.size, tk)
		tk.wg.Done()
	}
}

// runChunks executes worker w's share of the task under static round-robin
// chunk assignment: worker w runs chunks w, w+size, w+2*size, ...
func runChunks(w, size int, tk task) {
	n := tk.hi - tk.lo
	if n <= 0 {
		return
	}
	chunk := tk.chunk
	nchunks := (n + chunk - 1) / chunk
	for c := w; c < nchunks; c += size {
		start := tk.lo + c*chunk
		end := start + chunk
		if end > tk.hi {
			end = tk.hi
		}
		for i := start; i < end; i++ {
			tk.body(i)
		}
	}
}

// ParallelFor executes body(i) for every i in [lo, hi) across the team
// using a static schedule with the given chunk size. A chunk of 0 or less
// selects the OpenMP default, ceil(n/workers). ParallelFor blocks until
// every iteration has completed (the join barrier).
func (t *Team) ParallelFor(lo, hi, chunk int, body func(i int)) {
	if t.closed.Load() {
		panic("team: ParallelFor on closed Team")
	}
	n := hi - lo
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = (n + t.size - 1) / t.size
	}
	t.regions.Add(1)
	var wg sync.WaitGroup
	wg.Add(t.size)
	tk := task{lo: lo, hi: hi, chunk: chunk, body: body, wg: &wg}
	for w := 0; w < t.size; w++ {
		t.work[w] <- tk
	}
	wg.Wait()
}

// Close shuts the team's workers down and waits for them to exit, so no
// worker goroutine outlives the Team. The team must not be used after
// Close. Close is idempotent.
func (t *Team) Close() {
	if t.closed.Swap(true) {
		return
	}
	for _, ch := range t.work {
		close(ch)
	}
	t.done.Wait()
}

// ChunkAssignment reports, for an iteration space of n with the given
// chunk size and worker count, how many chunks and iterations each worker
// receives. It exists so tests and the machine model can agree on the
// schedule's load-balance properties.
func ChunkAssignment(n, chunk, workers int) (chunksPerWorker, itersPerWorker []int) {
	if workers <= 0 {
		panic(fmt.Sprintf("team: ChunkAssignment with %d workers", workers))
	}
	chunksPerWorker = make([]int, workers)
	itersPerWorker = make([]int, workers)
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = (n + workers - 1) / workers
	}
	nchunks := (n + chunk - 1) / chunk
	for c := 0; c < nchunks; c++ {
		w := c % workers
		chunksPerWorker[w]++
		iters := chunk
		if (c+1)*chunk > n {
			iters = n - c*chunk
		}
		itersPerWorker[w] += iters
	}
	return
}
