package mesh

import "fmt"

// Field is a cell-centered scalar field over a box, stored densely with a
// ghost layer of fixed width on every side. Indices are global (level
// index space); the field translates them to its local storage.
type Field struct {
	// Box is the interior (valid) region.
	Box Box
	// Ghost is the ghost-layer width.
	Ghost int

	nx, ny int // interior dims
	sx     int // row stride = nx + 2*Ghost
	data   []float64
}

// NewField allocates a zeroed field over the box with the given ghost
// width.
func NewField(box Box, ghost int) *Field {
	if ghost < 0 {
		panic("mesh: negative ghost width")
	}
	f := &Field{Box: box, Ghost: ghost, nx: box.NX(), ny: box.NY()}
	f.sx = f.nx + 2*ghost
	f.data = make([]float64, f.sx*(f.ny+2*ghost))
	return f
}

// Idx returns the storage index of global cell (i, j). The cell may lie
// in the ghost region.
func (f *Field) Idx(i, j int) int {
	li := i - f.Box.X0 + f.Ghost
	lj := j - f.Box.Y0 + f.Ghost
	return lj*f.sx + li
}

// At returns the value at global cell (i, j).
func (f *Field) At(i, j int) float64 { return f.data[f.Idx(i, j)] }

// Set stores v at global cell (i, j).
func (f *Field) Set(i, j int, v float64) { f.data[f.Idx(i, j)] = v }

// Add accumulates v into global cell (i, j).
func (f *Field) Add(i, j int, v float64) { f.data[f.Idx(i, j)] += v }

// Data exposes the raw storage (including ghosts) for kernel bodies that
// index it directly via Idx arithmetic.
func (f *Field) Data() []float64 { return f.data }

// Stride returns the row stride of the raw storage.
func (f *Field) Stride() int { return f.sx }

// Interior returns the number of interior cells.
func (f *Field) Interior() int { return f.nx * f.ny }

// CellOf maps a flat interior index k in [0, Interior()) to global (i, j)
// coordinates, row-major over the interior.
func (f *Field) CellOf(k int) (i, j int) {
	return f.Box.X0 + k%f.nx, f.Box.Y0 + k/f.nx
}

// Fill sets every interior cell to v.
func (f *Field) Fill(v float64) {
	for j := f.Box.Y0; j < f.Box.Y1; j++ {
		base := f.Idx(f.Box.X0, j)
		for i := 0; i < f.nx; i++ {
			f.data[base+i] = v
		}
	}
}

// FillAll sets every cell, including ghosts, to v.
func (f *Field) FillAll(v float64) {
	for i := range f.data {
		f.data[i] = v
	}
}

// CopyInterior copies the interior cells of src (which must have the same
// box) into f.
func (f *Field) CopyInterior(src *Field) {
	if src.Box != f.Box {
		panic(fmt.Sprintf("mesh: CopyInterior box mismatch %v vs %v", src.Box, f.Box))
	}
	for j := f.Box.Y0; j < f.Box.Y1; j++ {
		copy(f.data[f.Idx(f.Box.X0, j):f.Idx(f.Box.X1, j)],
			src.data[src.Idx(src.Box.X0, j):src.Idx(src.Box.X1, j)])
	}
}

// CopyRegion copies values over the cells of region (which must lie in
// both fields' valid-or-ghost extents) from src into f.
func (f *Field) CopyRegion(src *Field, region Box) {
	for j := region.Y0; j < region.Y1; j++ {
		for i := region.X0; i < region.X1; i++ {
			f.data[f.Idx(i, j)] = src.data[src.Idx(i, j)]
		}
	}
}

// SumInterior returns the sum over interior cells (useful for
// conservation checks in tests).
func (f *Field) SumInterior() float64 {
	var s float64
	for j := f.Box.Y0; j < f.Box.Y1; j++ {
		base := f.Idx(f.Box.X0, j)
		for i := 0; i < f.nx; i++ {
			s += f.data[base+i]
		}
	}
	return s
}

// MinMaxInterior returns the extrema over interior cells.
func (f *Field) MinMaxInterior() (lo, hi float64) {
	first := true
	for j := f.Box.Y0; j < f.Box.Y1; j++ {
		base := f.Idx(f.Box.X0, j)
		for i := 0; i < f.nx; i++ {
			v := f.data[base+i]
			if first || v < lo {
				lo = v
			}
			if first || v > hi {
				hi = v
			}
			first = false
		}
	}
	return
}
