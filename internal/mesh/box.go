// Package mesh provides structured-grid building blocks for the
// hydrodynamics applications: integer index boxes and cell-centered
// fields with ghost layers.
package mesh

import "fmt"

// Box is a rectangular region of 2D cell indices: [X0,X1) x [Y0,Y1).
type Box struct {
	X0, Y0, X1, Y1 int
}

// NewBox returns the box [x0,x1) x [y0,y1).
func NewBox(x0, y0, x1, y1 int) Box { return Box{X0: x0, Y0: y0, X1: x1, Y1: y1} }

// NX returns the box width in cells.
func (b Box) NX() int {
	if b.X1 <= b.X0 {
		return 0
	}
	return b.X1 - b.X0
}

// NY returns the box height in cells.
func (b Box) NY() int {
	if b.Y1 <= b.Y0 {
		return 0
	}
	return b.Y1 - b.Y0
}

// Count returns the number of cells in the box.
func (b Box) Count() int { return b.NX() * b.NY() }

// Empty reports whether the box contains no cells.
func (b Box) Empty() bool { return b.Count() == 0 }

// Contains reports whether cell (i, j) lies inside the box.
func (b Box) Contains(i, j int) bool {
	return i >= b.X0 && i < b.X1 && j >= b.Y0 && j < b.Y1
}

// ContainsBox reports whether other lies entirely inside b.
func (b Box) ContainsBox(other Box) bool {
	if other.Empty() {
		return true
	}
	return other.X0 >= b.X0 && other.X1 <= b.X1 && other.Y0 >= b.Y0 && other.Y1 <= b.Y1
}

// Intersect returns the overlap of two boxes (possibly empty).
func (b Box) Intersect(other Box) Box {
	out := Box{
		X0: maxi(b.X0, other.X0), Y0: maxi(b.Y0, other.Y0),
		X1: mini(b.X1, other.X1), Y1: mini(b.Y1, other.Y1),
	}
	if out.X1 < out.X0 {
		out.X1 = out.X0
	}
	if out.Y1 < out.Y0 {
		out.Y1 = out.Y0
	}
	return out
}

// Overlaps reports whether the two boxes share any cell.
func (b Box) Overlaps(other Box) bool { return !b.Intersect(other).Empty() }

// Grow expands the box by g cells on every side.
func (b Box) Grow(g int) Box {
	return Box{X0: b.X0 - g, Y0: b.Y0 - g, X1: b.X1 + g, Y1: b.Y1 + g}
}

// Refine maps the box into an index space refined by ratio r.
func (b Box) Refine(r int) Box {
	return Box{X0: b.X0 * r, Y0: b.Y0 * r, X1: b.X1 * r, Y1: b.Y1 * r}
}

// Coarsen maps the box into an index space coarsened by ratio r,
// rounding outward so the coarse box covers the fine one.
func (b Box) Coarsen(r int) Box {
	return Box{
		X0: floorDiv(b.X0, r), Y0: floorDiv(b.Y0, r),
		X1: ceilDiv(b.X1, r), Y1: ceilDiv(b.Y1, r),
	}
}

// String renders the box as [x0,x1)x[y0,y1).
func (b Box) String() string {
	return fmt.Sprintf("[%d,%d)x[%d,%d)", b.X0, b.X1, b.Y0, b.Y1)
}

func mini(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func floorDiv(a, r int) int {
	q := a / r
	if a%r != 0 && (a < 0) != (r < 0) {
		q--
	}
	return q
}

func ceilDiv(a, r int) int { return -floorDiv(-a, r) }
