package mesh

import (
	"testing"
	"testing/quick"
)

func TestBoxDims(t *testing.T) {
	b := NewBox(2, 3, 10, 7)
	if b.NX() != 8 || b.NY() != 4 || b.Count() != 32 || b.Empty() {
		t.Errorf("box dims wrong: %v", b)
	}
	if !NewBox(5, 5, 5, 9).Empty() {
		t.Error("zero-width box should be empty")
	}
	if NewBox(9, 0, 2, 4).NX() != 0 {
		t.Error("inverted box should have zero extent")
	}
}

func TestBoxContains(t *testing.T) {
	b := NewBox(0, 0, 4, 4)
	if !b.Contains(0, 0) || !b.Contains(3, 3) || b.Contains(4, 0) || b.Contains(-1, 2) {
		t.Error("Contains wrong at edges")
	}
	if !b.ContainsBox(NewBox(1, 1, 3, 3)) || b.ContainsBox(NewBox(1, 1, 5, 3)) {
		t.Error("ContainsBox wrong")
	}
	if !b.ContainsBox(NewBox(9, 9, 9, 9)) {
		t.Error("every box contains the empty box")
	}
}

func TestBoxIntersect(t *testing.T) {
	a := NewBox(0, 0, 10, 10)
	b := NewBox(5, 5, 15, 15)
	ov := a.Intersect(b)
	if ov != NewBox(5, 5, 10, 10) {
		t.Errorf("Intersect = %v", ov)
	}
	if !a.Overlaps(b) || a.Overlaps(NewBox(20, 20, 30, 30)) {
		t.Error("Overlaps wrong")
	}
	if !a.Intersect(NewBox(10, 0, 20, 10)).Empty() {
		t.Error("touching boxes should not overlap")
	}
}

func TestRefineCoarsenInverse(t *testing.T) {
	f := func(x0, y0 int8, nx, ny uint8, rRaw uint8) bool {
		r := int(rRaw)%3 + 2
		b := NewBox(int(x0), int(y0), int(x0)+int(nx)+1, int(y0)+int(ny)+1)
		// Coarsen(Refine(b)) must be the identity.
		return b.Refine(r).Coarsen(r) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCoarsenCovers(t *testing.T) {
	b := NewBox(1, 3, 7, 9)
	c := b.Coarsen(2)
	if !c.Refine(2).ContainsBox(b) {
		t.Errorf("Coarsen(%v)=%v does not cover", b, c)
	}
	// Negative coordinates must round toward -inf.
	n := NewBox(-3, -3, 1, 1).Coarsen(2)
	if n != NewBox(-2, -2, 1, 1) {
		t.Errorf("negative coarsen = %v", n)
	}
}

func TestGrow(t *testing.T) {
	if NewBox(2, 2, 4, 4).Grow(2) != NewBox(0, 0, 6, 6) {
		t.Error("Grow wrong")
	}
}

func TestFieldIndexing(t *testing.T) {
	f := NewField(NewBox(10, 20, 14, 23), 2)
	f.Set(10, 20, 1.5)
	f.Set(13, 22, -2)
	f.Set(9, 19, 7) // ghost cell
	if f.At(10, 20) != 1.5 || f.At(13, 22) != -2 || f.At(9, 19) != 7 {
		t.Error("set/get wrong")
	}
	if f.Interior() != 12 {
		t.Errorf("Interior = %d", f.Interior())
	}
	f.Add(10, 20, 0.5)
	if f.At(10, 20) != 2 {
		t.Error("Add wrong")
	}
}

func TestFieldCellOfRoundTrip(t *testing.T) {
	f := NewField(NewBox(5, 7, 9, 12), 1)
	for k := 0; k < f.Interior(); k++ {
		i, j := f.CellOf(k)
		if !f.Box.Contains(i, j) {
			t.Fatalf("CellOf(%d) = (%d,%d) outside box", k, i, j)
		}
		f.Set(i, j, float64(k))
	}
	for k := 0; k < f.Interior(); k++ {
		i, j := f.CellOf(k)
		if f.At(i, j) != float64(k) {
			t.Fatalf("cell %d readback wrong", k)
		}
	}
}

func TestFieldFillAndSum(t *testing.T) {
	f := NewField(NewBox(0, 0, 4, 4), 2)
	f.FillAll(9)
	f.Fill(1)
	if got := f.SumInterior(); got != 16 {
		t.Errorf("SumInterior = %g, want 16 (ghosts must not count)", got)
	}
	lo, hi := f.MinMaxInterior()
	if lo != 1 || hi != 1 {
		t.Errorf("MinMax = %g,%g", lo, hi)
	}
}

func TestFieldCopyInterior(t *testing.T) {
	a := NewField(NewBox(0, 0, 3, 3), 1)
	b := NewField(NewBox(0, 0, 3, 3), 1)
	a.Fill(4)
	a.Set(-1, -1, 99) // ghost should not copy
	b.CopyInterior(a)
	if b.SumInterior() != 36 {
		t.Error("CopyInterior wrong")
	}
	if b.At(-1, -1) == 99 {
		t.Error("CopyInterior copied ghosts")
	}
}

func TestFieldCopyRegion(t *testing.T) {
	a := NewField(NewBox(0, 0, 4, 4), 2)
	b := NewField(NewBox(2, 0, 6, 4), 2)
	a.Fill(3)
	// b's ghost region overlaps a's interior on [0,2)x[0,4).
	b.CopyRegion(a, NewBox(0, 0, 2, 4))
	if b.At(0, 0) != 3 || b.At(1, 3) != 3 {
		t.Error("CopyRegion into ghosts failed")
	}
}

func TestFieldDataStrideConsistent(t *testing.T) {
	f := NewField(NewBox(0, 0, 5, 3), 2)
	f.Set(2, 1, 42)
	idx := f.Idx(2, 1)
	if f.Data()[idx] != 42 {
		t.Error("raw data access inconsistent with At")
	}
	if f.Idx(2, 2)-f.Idx(2, 1) != f.Stride() {
		t.Error("stride inconsistent")
	}
}
