// Package instmix describes the instruction mix of kernel bodies.
//
// The paper gathers "instruction features" — the frequency of grouped x86
// mnemonics inside each RAJA lambda — from the application binary using the
// Dyninst library. Binary analysis is not available here, so each kernel in
// this repository registers a declarative instruction-mix descriptor
// instead. The decision models only ever consume the mnemonic histogram, so
// a static descriptor supplies exactly the same feature vector the paper's
// Dyninst pass would.
//
// The mnemonic groups are those listed in Table I of the paper (for
// example, the Add group covers add, addpd, and addsd), plus movsd, which
// the paper's feature-importance analysis (Fig. 8) calls out separately as
// a scalar-load indicator.
package instmix

import (
	"fmt"
	"strings"
)

// Group identifies one grouped instruction mnemonic from Table I.
type Group int

// The grouped mnemonics collected for each kernel (paper Table I).
const (
	Add Group = iota
	And
	Call
	Cmp
	Comisd
	Divsd
	Inc
	Jb
	Lea
	Loop
	Maxsd
	Minsd
	Mov
	Movsd
	Mulpd
	Nop
	Pop
	Push
	Pxor
	Ret
	Sar
	Shl
	Sqrtsd
	Sub
	Test
	Ucomisd
	Unpckhpd
	Unpcklpd
	Xor
	Xorps
	NumGroups // number of mnemonic groups
)

var groupNames = [NumGroups]string{
	Add: "add", And: "and", Call: "call", Cmp: "cmp", Comisd: "comisd",
	Divsd: "divsd", Inc: "inc", Jb: "jb", Lea: "lea", Loop: "loop",
	Maxsd: "maxsd", Minsd: "minsd", Mov: "mov", Movsd: "movsd",
	Mulpd: "mulpd", Nop: "nop", Pop: "pop", Push: "push", Pxor: "pxor",
	Ret: "ret", Sar: "sar", Shl: "shl_sal", Sqrtsd: "sqrtsd", Sub: "sub",
	Test: "test", Ucomisd: "ucomisd", Unpckhpd: "unpckhpd",
	Unpcklpd: "unpcklpd", Xor: "xor", Xorps: "xorps",
}

// String returns the mnemonic group name as it appears in training data.
func (g Group) String() string {
	if g < 0 || g >= NumGroups {
		return fmt.Sprintf("group(%d)", int(g))
	}
	return groupNames[g]
}

// GroupByName returns the group with the given Table I name.
func GroupByName(name string) (Group, bool) {
	for g, n := range groupNames {
		if n == name {
			return Group(g), true
		}
	}
	return 0, false
}

// GroupNames returns the names of all mnemonic groups in group order.
func GroupNames() []string {
	names := make([]string, NumGroups)
	for i := range names {
		names[i] = groupNames[i]
	}
	return names
}

// Mix holds the per-iteration instruction counts of one kernel body,
// grouped by mnemonic. Counts are fractional because a body's dynamic mix
// per loop iteration may average over internal branches.
type Mix struct {
	counts [NumGroups]float64
}

// NewMix returns an empty instruction mix.
func NewMix() *Mix { return &Mix{} }

// With adds n occurrences of group g and returns the mix for chaining.
func (m *Mix) With(g Group, n float64) *Mix {
	m.counts[g] += n
	return m
}

// Count returns the number of occurrences of group g.
func (m *Mix) Count(g Group) float64 { return m.counts[g] }

// Counts returns a copy of all group counts in group order.
func (m *Mix) Counts() []float64 {
	c := make([]float64, NumGroups)
	copy(c, m.counts[:])
	return c
}

// FuncSize returns the total instruction count of the kernel body,
// the paper's func_size feature.
func (m *Mix) FuncSize() float64 {
	var total float64
	for _, c := range m.counts {
		total += c
	}
	return total
}

// LoadsPerIter estimates the number of 8-byte loads per iteration.
// Scalar SSE loads (movsd) and general moves contribute; roughly half of
// mov instructions touch memory on typical compiled kernels.
func (m *Mix) LoadsPerIter() float64 {
	return m.counts[Movsd] + 0.5*m.counts[Mov]
}

// StoresPerIter estimates the number of 8-byte stores per iteration.
func (m *Mix) StoresPerIter() float64 {
	return 0.35*m.counts[Movsd] + 0.25*m.counts[Mov]
}

// BytesPerIter returns the estimated memory traffic of one iteration.
func (m *Mix) BytesPerIter() float64 {
	return 8 * (m.LoadsPerIter() + m.StoresPerIter())
}

// Clone returns a deep copy of the mix.
func (m *Mix) Clone() *Mix {
	c := *m
	return &c
}

// Scale multiplies every count by f and returns the mix for chaining.
// It is useful for deriving boundary-kernel variants of interior kernels.
func (m *Mix) Scale(f float64) *Mix {
	for i := range m.counts {
		m.counts[i] *= f
	}
	return m
}

// Merge adds every count of other into m and returns m.
func (m *Mix) Merge(other *Mix) *Mix {
	for i := range m.counts {
		m.counts[i] += other.counts[i]
	}
	return m
}

// String renders the non-zero groups, e.g. "add:4 mulpd:2 movsd:6".
func (m *Mix) String() string {
	var b strings.Builder
	for g := Group(0); g < NumGroups; g++ {
		if m.counts[g] != 0 {
			if b.Len() > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%s:%g", g, m.counts[g])
		}
	}
	return b.String()
}

// Costs holds the modeled cost, in nanoseconds, of one instruction from
// each mnemonic group.
type Costs [NumGroups]float64

// SandyBridgeCosts returns per-group instruction costs approximating a
// 2.6 GHz Sandy Bridge core (reciprocal throughputs at ~0.385 ns/cycle,
// assuming modest instruction-level parallelism).
func SandyBridgeCosts() Costs {
	var c Costs
	cycle := 1.0 / 2.6 // ns per cycle at 2.6 GHz
	cheap := 0.33 * cycle
	for g := range c {
		c[g] = cheap
	}
	c[Add] = 0.5 * cycle
	c[Sub] = 0.5 * cycle
	c[Mulpd] = 0.6 * cycle
	c[Divsd] = 14 * cycle
	c[Sqrtsd] = 14 * cycle
	c[Maxsd] = 0.8 * cycle
	c[Minsd] = 0.8 * cycle
	c[Comisd] = 0.9 * cycle
	c[Ucomisd] = 0.9 * cycle
	c[Mov] = 0.5 * cycle
	c[Movsd] = 0.9 * cycle
	c[Call] = 4 * cycle
	c[Ret] = 3 * cycle
	c[Push] = 0.9 * cycle
	c[Pop] = 0.9 * cycle
	c[Unpckhpd] = 0.9 * cycle
	c[Unpcklpd] = 0.9 * cycle
	c[Nop] = 0.1 * cycle
	return c
}

// CostNS returns the modeled compute cost in nanoseconds of one iteration
// of a body with this mix, under the given per-group costs.
func (m *Mix) CostNS(costs *Costs) float64 {
	var total float64
	for g, n := range m.counts {
		total += n * costs[g]
	}
	return total
}
