package instmix

import (
	"testing"
	"testing/quick"
)

func TestGroupNamesRoundTrip(t *testing.T) {
	for g := Group(0); g < NumGroups; g++ {
		name := g.String()
		got, ok := GroupByName(name)
		if !ok {
			t.Fatalf("GroupByName(%q) not found", name)
		}
		if got != g {
			t.Errorf("GroupByName(%q) = %v, want %v", name, got, g)
		}
	}
}

func TestGroupByNameUnknown(t *testing.T) {
	if _, ok := GroupByName("no_such_mnemonic"); ok {
		t.Error("GroupByName accepted an unknown name")
	}
}

func TestGroupNamesCount(t *testing.T) {
	names := GroupNames()
	if len(names) != int(NumGroups) {
		t.Fatalf("GroupNames returned %d names, want %d", len(names), NumGroups)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if n == "" {
			t.Error("empty group name")
		}
		if seen[n] {
			t.Errorf("duplicate group name %q", n)
		}
		seen[n] = true
	}
}

func TestMixWithAndCount(t *testing.T) {
	m := NewMix().With(Add, 3).With(Mulpd, 2).With(Add, 1)
	if got := m.Count(Add); got != 4 {
		t.Errorf("Count(Add) = %g, want 4", got)
	}
	if got := m.Count(Mulpd); got != 2 {
		t.Errorf("Count(Mulpd) = %g, want 2", got)
	}
	if got := m.FuncSize(); got != 6 {
		t.Errorf("FuncSize = %g, want 6", got)
	}
}

func TestMixCloneIsIndependent(t *testing.T) {
	m := NewMix().With(Add, 1)
	c := m.Clone().With(Add, 5)
	if m.Count(Add) != 1 {
		t.Errorf("Clone mutated the original: Count(Add) = %g", m.Count(Add))
	}
	if c.Count(Add) != 6 {
		t.Errorf("clone Count(Add) = %g, want 6", c.Count(Add))
	}
}

func TestMixScaleAndMerge(t *testing.T) {
	m := NewMix().With(Add, 2).With(Movsd, 4).Scale(0.5)
	if m.Count(Add) != 1 || m.Count(Movsd) != 2 {
		t.Errorf("Scale gave add=%g movsd=%g", m.Count(Add), m.Count(Movsd))
	}
	m.Merge(NewMix().With(Add, 3))
	if m.Count(Add) != 4 {
		t.Errorf("Merge gave add=%g, want 4", m.Count(Add))
	}
}

func TestCostNSPositiveAndMonotone(t *testing.T) {
	costs := SandyBridgeCosts()
	small := NewMix().With(Add, 1)
	big := NewMix().With(Add, 1).With(Divsd, 2)
	if small.CostNS(&costs) <= 0 {
		t.Error("cost of a non-empty mix must be positive")
	}
	if big.CostNS(&costs) <= small.CostNS(&costs) {
		t.Error("adding divides must increase cost")
	}
}

func TestDivideCostsMoreThanAdd(t *testing.T) {
	costs := SandyBridgeCosts()
	if costs[Divsd] <= costs[Add] {
		t.Errorf("divsd (%g) should cost more than add (%g)", costs[Divsd], costs[Add])
	}
	if costs[Sqrtsd] <= costs[Mov] {
		t.Errorf("sqrtsd (%g) should cost more than mov (%g)", costs[Sqrtsd], costs[Mov])
	}
}

func TestBytesPerIterTracksMoves(t *testing.T) {
	none := NewMix().With(Add, 10)
	ldst := NewMix().With(Add, 10).With(Movsd, 6)
	if none.BytesPerIter() != 0 {
		t.Errorf("pure-compute mix reports %g bytes/iter", none.BytesPerIter())
	}
	if ldst.BytesPerIter() <= 0 {
		t.Error("load/store mix reports no memory traffic")
	}
}

func TestMixStringListsNonZero(t *testing.T) {
	m := NewMix().With(Add, 4).With(Sqrtsd, 1)
	s := m.String()
	if s != "add:4 sqrtsd:1" {
		t.Errorf("String() = %q", s)
	}
	if (&Mix{}).String() != "" {
		t.Errorf("empty mix String() = %q, want empty", (&Mix{}).String())
	}
}

func TestFuncSizeEqualsSumOfCountsProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		m := NewMix().
			With(Add, float64(a)).
			With(Mov, float64(b)).
			With(Cmp, float64(c))
		return m.FuncSize() == float64(a)+float64(b)+float64(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCostLinearInCountsProperty(t *testing.T) {
	costs := SandyBridgeCosts()
	f := func(a, b uint8) bool {
		m1 := NewMix().With(Add, float64(a)).With(Divsd, float64(b))
		m2 := m1.Clone().Scale(2)
		c1, c2 := m1.CostNS(&costs), m2.CostNS(&costs)
		return abs(c2-2*c1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
