// Package fleet turns the single-daemon Apollo service into an
// N-replica system. It holds the control plane the data path (the
// ring-routed FleetClient in internal/client) leans on:
//
//   - Health: probes every replica's /healthz and drives hash-ring
//     membership, so clients stop routing to a dead replica within a
//     probe interval instead of discovering the outage per request.
//   - Syncer: delta model distribution. Each replica polls its peers'
//     model lists and pulls any strictly newer version over the existing
//     ETag/conditional-GET plumbing, so a champion published on one
//     replica converges on all of them — same version, same entity tag,
//     because the registry's envelope marshaling is deterministic.
//   - MergedCursor: collective training's input. It unions the fleet's
//     per-replica telemetry spools into one training window, which is
//     how apollo-traind learns from every client's observations instead
//     of one process's (the APOLLO_COLLECTIVE_TRAINING behavior).
//
// Everything here is control-plane code: seconds-cadence polling loops
// that never sit on a launch path.
package fleet

import (
	"fmt"
	"sort"
	"strings"

	"apollo/internal/fleet/hashring"
	"apollo/internal/metrics"
)

// Peer names one fleet replica: a stable id (its ring identity) and the
// base URL of its model-service API.
type Peer struct {
	ID   string
	Base string
}

// ParsePeers parses a "-peers"-style flag: comma-separated id=url pairs,
// e.g. "r1=http://10.0.0.1:8080,r2=http://10.0.0.2:8080". A bare URL
// with no id uses the URL as both.
func ParsePeers(s string) ([]Peer, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var peers []Peer
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		p := Peer{ID: part, Base: part}
		if i := strings.Index(part, "="); i >= 0 {
			p.ID, p.Base = part[:i], part[i+1:]
		}
		if p.ID == "" || p.Base == "" {
			return nil, fmt.Errorf("fleet: malformed peer %q (want id=url)", part)
		}
		if seen[p.ID] {
			return nil, fmt.Errorf("fleet: duplicate peer id %q", p.ID)
		}
		seen[p.ID] = true
		peers = append(peers, p)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i].ID < peers[j].ID })
	return peers, nil
}

// PeerMap returns the peers as the id -> base map client.NewFleet wants.
func PeerMap(peers []Peer) map[string]string {
	m := make(map[string]string, len(peers))
	for _, p := range peers {
		m[p.ID] = p.Base
	}
	return m
}

// ExportRing refreshes the per-replica ring-ownership gauges: each
// member's share of the hash space in basis points (a gauge is integral)
// and the member count.
func ExportRing(met *metrics.Metrics, ring *hashring.Ring) {
	own := ring.Ownership()
	ids := make([]string, 0, len(own))
	for id := range own {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		met.GaugeSet("apollo_fleet_ring_ownership_bp", "replica", id,
			"Share of the consistent-hash key space owned, in basis points.",
			int64(own[id]*10000+0.5))
	}
	met.GaugeSet("apollo_fleet_ring_members", "", "",
		"Replicas currently in the consistent-hash ring.", int64(ring.Len()))
}
