package hashring

import (
	"fmt"
	"sync"
	"testing"
)

// keys returns nKeys synthetic (app, model namespace) routing keys.
func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("app-%d/site-%d/policy", i%7, i)
	}
	return out
}

func TestLookupEmptyRing(t *testing.T) {
	r := New(0)
	if got := r.Lookup("a/b"); got != "" {
		t.Fatalf("Lookup on empty ring = %q, want \"\"", got)
	}
	if got := r.LookupN("a/b", 2, nil); len(got) != 0 {
		t.Fatalf("LookupN on empty ring = %v, want empty", got)
	}
}

func TestLookupDeterministicAcrossJoinOrder(t *testing.T) {
	a, b := New(64), New(64)
	for _, id := range []string{"r1", "r2", "r3"} {
		a.Add(id)
	}
	for _, id := range []string{"r3", "r1", "r2"} {
		b.Add(id)
	}
	for _, k := range keys(500) {
		if ga, gb := a.Lookup(k), b.Lookup(k); ga != gb {
			t.Fatalf("join order changed routing for %q: %q vs %q", k, ga, gb)
		}
	}
}

func TestLookupNDistinctPreferenceOrder(t *testing.T) {
	r := New(64)
	for _, id := range []string{"r1", "r2", "r3"} {
		r.Add(id)
	}
	for _, k := range keys(200) {
		got := r.LookupN(k, 3, nil)
		if len(got) != 3 {
			t.Fatalf("LookupN(%q) = %v, want 3 members", k, got)
		}
		if got[0] != r.Lookup(k) {
			t.Fatalf("LookupN(%q)[0] = %q, Lookup = %q", k, got[0], r.Lookup(k))
		}
		seen := map[string]bool{}
		for _, id := range got {
			if seen[id] {
				t.Fatalf("LookupN(%q) repeated member %q: %v", k, id, got)
			}
			seen[id] = true
		}
	}
}

// TestRebalanceMovesExpectedFraction is the consistent-hashing contract:
// growing a 3-replica ring to 4 must move about 1/4 of the keys (only
// the share the newcomer takes over), not reshuffle everything, and
// removing the newcomer must restore the original routing exactly.
func TestRebalanceMovesExpectedFraction(t *testing.T) {
	const nKeys = 20000
	r := New(0)
	for _, id := range []string{"r1", "r2", "r3"} {
		r.Add(id)
	}
	ks := keys(nKeys)
	before := make([]string, nKeys)
	for i, k := range ks {
		before[i] = r.Lookup(k)
	}

	r.Add("r4")
	moved := 0
	for i, k := range ks {
		after := r.Lookup(k)
		if after != before[i] {
			// Keys may only move TO the new member, never between
			// survivors — that is what bounds fleet-wide cache churn.
			if after != "r4" {
				t.Fatalf("key %q moved %q -> %q, not to the new member", k, before[i], after)
			}
			moved++
		}
	}
	frac := float64(moved) / nKeys
	// Ideal is 1/4; vnode placement noise allows a band around it.
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("adding 4th member moved %.1f%% of keys, want ~25%%", 100*frac)
	}

	r.Remove("r4")
	for i, k := range ks {
		if got := r.Lookup(k); got != before[i] {
			t.Fatalf("removal did not restore routing for %q: %q, want %q", k, got, before[i])
		}
	}
}

func TestOwnershipRoughlyUniform(t *testing.T) {
	r := New(0)
	members := []string{"r1", "r2", "r3", "r4"}
	for _, id := range members {
		r.Add(id)
	}
	own := r.Ownership()
	var sum float64
	for _, id := range members {
		share := own[id]
		sum += share
		if share < 0.10 || share > 0.45 {
			t.Fatalf("member %s owns %.1f%% of the space, want near 25%%", id, 100*share)
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("ownership sums to %f, want 1", sum)
	}
}

// TestConcurrentLookupDuringMembershipChange is the in-flight-traffic
// half of the rebalancing contract: lookups racing Add/Remove must
// always land on a member that was in the ring at some point during the
// change window — never "" and never a torn read. Run under -race this
// also proves the copy-on-write publication is sound.
func TestConcurrentLookupDuringMembershipChange(t *testing.T) {
	r := New(32)
	r.Add("r1")
	r.Add("r2")
	valid := map[string]bool{"r1": true, "r2": true, "r3": true}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	routed := make([]int, 8)
	for g := 0; g < len(routed); g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ks := keys(64)
			dst := make([]string, 0, 3)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, k := range ks {
					if got := r.Lookup(k); !valid[got] {
						t.Errorf("Lookup(%q) = %q during membership change", k, got)
						return
					}
					dst = r.LookupN(k, 2, dst[:0])
					if len(dst) == 0 {
						t.Errorf("LookupN(%q) empty during membership change", k)
						return
					}
					routed[g]++
				}
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		r.Add("r3")
		r.Remove("r3")
	}
	close(stop)
	wg.Wait()
}

// TestLookupAllocs holds the routing decision to zero allocations — the
// ring sits on the client's launch path next to Predict.
func TestLookupAllocs(t *testing.T) {
	r := New(0)
	for _, id := range []string{"r1", "r2", "r3"} {
		r.Add(id)
	}
	key := "lulesh/policy"
	if n := testing.AllocsPerRun(100, func() { r.Lookup(key) }); n != 0 {
		t.Fatalf("Lookup allocates %v times per call, want 0", n)
	}
	dst := make([]string, 0, 3)
	if n := testing.AllocsPerRun(100, func() { dst = r.LookupN(key, 3, dst[:0]) }); n != 0 {
		t.Fatalf("LookupN into reused buffer allocates %v times per call, want 0", n)
	}
}

func BenchmarkLookup(b *testing.B) {
	r := New(0)
	for i := 0; i < 8; i++ {
		r.Add(fmt.Sprintf("replica-%d", i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Lookup("lulesh/policy")
	}
}
