// Package hashring is the fleet layer's consistent-hash ring: it maps a
// routing key — conventionally the (app, model namespace) prefix of a
// registry name, e.g. "lulesh/policy" — onto one of N serving replicas,
// with bounded key movement when membership changes. Each member owns
// many virtual nodes, so removing a replica redistributes only its own
// ~1/N share of the key space across the survivors instead of reshuffling
// everything, and clients that lose their primary fail over to the next
// distinct member clockwise on the ring.
//
// Lookups sit on the client's launch path (every model fetch and
// telemetry upload routes through one), so the ring is copy-on-write
// behind an atomic pointer: Lookup is one atomic load, an inline FNV-1a
// hash, and a binary search — no locks, no allocation, enforced by
// apollo-vet's hotpath analyzer. Membership changes clone and republish
// the table under a mutex; an in-flight Lookup keeps reading the table it
// loaded, so a concurrent Add/Remove can never tear a routing decision.
package hashring

import (
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultVnodes is the virtual-node count per member. 128 vnodes keeps
// the per-member ownership share within a few percent of 1/N for small
// fleets while the table stays a few kilobytes.
const DefaultVnodes = 128

// Ring routes keys to members. The zero value is not usable; call New.
type Ring struct {
	vnodes int

	// mu serializes membership changes only; lookups never take it.
	mu  sync.Mutex //apollo:lockrank 15
	cur atomic.Pointer[table]
}

// table is one immutable published view of the ring: vnode hashes sorted
// ascending with the owning member parallel to them.
type table struct {
	hashes  []uint64
	owners  []string
	members []string // sorted distinct member ids
}

// New returns an empty ring with vnodes virtual nodes per member
// (DefaultVnodes when <= 0).
func New(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{vnodes: vnodes}
	r.cur.Store(&table{})
	return r
}

// Len returns the current member count.
func (r *Ring) Len() int { return len(r.cur.Load().members) }

// Members returns the sorted member ids.
func (r *Ring) Members() []string {
	return append([]string(nil), r.cur.Load().members...)
}

// Add inserts member id, a no-op if it is already present.
func (r *Ring) Add(id string) {
	if id == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.cur.Load()
	for _, m := range old.members {
		if m == id {
			return
		}
	}
	r.rebuildLocked(append(append([]string(nil), old.members...), id))
}

// Remove deletes member id, a no-op if it is absent.
func (r *Ring) Remove(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.cur.Load()
	next := make([]string, 0, len(old.members))
	for _, m := range old.members {
		if m != id {
			next = append(next, m)
		}
	}
	if len(next) == len(old.members) {
		return
	}
	r.rebuildLocked(next)
}

// rebuildLocked recomputes and publishes the vnode table for members.
// Vnode hashes depend only on (member id, vnode index), so two rings
// with the same membership route identically regardless of join order.
func (r *Ring) rebuildLocked(members []string) {
	sort.Strings(members)
	t := &table{
		hashes:  make([]uint64, 0, len(members)*r.vnodes),
		owners:  make([]string, 0, len(members)*r.vnodes),
		members: members,
	}
	for _, id := range members {
		for i := 0; i < r.vnodes; i++ {
			t.hashes = append(t.hashes, vnodeHash(id, i))
			t.owners = append(t.owners, id)
		}
	}
	sort.Sort(byHash{t})
	r.cur.Store(t)
}

// byHash sorts the parallel hash/owner slices by hash. Equal hashes
// (astronomically unlikely) tie-break by owner so the table is
// deterministic across replicas.
type byHash struct{ t *table }

func (b byHash) Len() int { return len(b.t.hashes) }
func (b byHash) Less(i, j int) bool {
	if b.t.hashes[i] != b.t.hashes[j] {
		return b.t.hashes[i] < b.t.hashes[j]
	}
	return b.t.owners[i] < b.t.owners[j]
}
func (b byHash) Swap(i, j int) {
	b.t.hashes[i], b.t.hashes[j] = b.t.hashes[j], b.t.hashes[i]
	b.t.owners[i], b.t.owners[j] = b.t.owners[j], b.t.owners[i]
}

// Lookup returns the member owning key, or "" for an empty ring. This is
// the client-side routing decision for every model fetch and telemetry
// upload: one atomic table load, an inline hash, one binary search.
//
//apollo:hotpath
func (r *Ring) Lookup(key string) string {
	t := r.cur.Load()
	if len(t.hashes) == 0 {
		return ""
	}
	return t.owners[t.search(keyHash(key))]
}

// LookupN appends to dst the first n distinct members clockwise from
// key's position — the failover preference order: dst[0] is the owner,
// dst[1] the replica a client should retry on, and so on. It returns the
// extended slice (fewer than n entries when the ring is smaller).
// Passing a reused dst[:0] keeps the call allocation-free.
func (r *Ring) LookupN(key string, n int, dst []string) []string {
	t := r.cur.Load()
	if len(t.hashes) == 0 || n <= 0 {
		return dst
	}
	if n > len(t.members) {
		n = len(t.members)
	}
	start := t.search(keyHash(key))
	for i := 0; i < len(t.hashes) && n > 0; i++ {
		owner := t.owners[(start+i)%len(t.hashes)]
		seen := false
		for _, d := range dst {
			if d == owner {
				seen = true
				break
			}
		}
		if seen {
			continue
		}
		dst = append(dst, owner)
		n--
	}
	return dst
}

// search returns the index of the first vnode at or clockwise after h.
func (t *table) search(h uint64) int {
	// Hand-rolled binary search: sort.Search takes a func value, which
	// the hotpath analyzer (correctly) refuses to follow alloc-free.
	lo, hi := 0, len(t.hashes)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.hashes[mid] < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(t.hashes) {
		return 0 // wrap: key hashes past the last vnode
	}
	return lo
}

// Ownership returns each member's share of the hash space, summing to 1
// (empty map for an empty ring). The fleet metrics exporter turns this
// into the per-replica ring-ownership gauge.
func (r *Ring) Ownership() map[string]float64 {
	t := r.cur.Load()
	if len(t.hashes) == 0 {
		return map[string]float64{}
	}
	own := make(map[string]float64, len(t.members))
	for i, h := range t.hashes {
		// The arc owned by vnode i stretches from the previous vnode
		// (exclusive) to h (inclusive); the first vnode also owns the
		// wraparound arc past the last.
		var arc uint64
		if i == 0 {
			arc = h + (^uint64(0) - t.hashes[len(t.hashes)-1])
		} else {
			arc = h - t.hashes[i-1]
		}
		own[t.owners[i]] += float64(arc)
	}
	total := float64(^uint64(0))
	for id := range own {
		own[id] /= total
	}
	return own
}

// fnv-1a 64-bit constants.
const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// keyHash is FNV-1a over the key bytes, inlined so the hotpath lookup
// neither allocates a hash.Hash nor copies the key.
//
//apollo:hotpath
func keyHash(key string) uint64 {
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// vnodeHash names virtual node i of member id. The separator keeps
// ("ab", 1) and ("a", 11)-style collisions apart.
func vnodeHash(id string, i int) uint64 {
	h := uint64(offset64)
	for j := 0; j < len(id); j++ {
		h ^= uint64(id[j])
		h *= prime64
	}
	h ^= uint64('#')
	h *= prime64
	for ; ; i /= 10 {
		h ^= uint64('0' + i%10)
		h *= prime64
		if i < 10 {
			break
		}
	}
	return h
}
