package fleet

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"apollo/internal/looptrace"
	"apollo/internal/metrics"
)

// HealthOptions tunes a Health checker; the zero value picks defaults.
type HealthOptions struct {
	// HTTPClient overrides the probe transport (default 2s timeout).
	HTTPClient *http.Client
	// FailAfter is how many consecutive probe failures evict a replica
	// from the ring (default 2 — one lost probe must not reshuffle keys).
	FailAfter int
	// Logf receives up/down transitions (default: discard).
	Logf func(format string, args ...any)
	// Trace (optional) receives ring-evict / ring-readmit loop events on
	// membership transitions (Peer = replica ID). Nil disables emission.
	Trace *looptrace.Tracer
}

// Membership is what the checker drives: the hash ring (or anything
// else that wants add/remove membership events).
type Membership interface {
	Add(id string)
	Remove(id string)
}

// Health probes replica liveness and edits ring membership. A replica
// leaves the ring after FailAfter consecutive failed /healthz probes and
// rejoins on the first success, so routing converges to the live set
// within a probe interval or two while brief blips change nothing.
type Health struct {
	peers []Peer
	ring  Membership
	hc    *http.Client
	after int
	logf  func(format string, args ...any)
	trace *looptrace.Tracer

	mu       sync.Mutex //apollo:lockrank 16
	failures map[string]int
	down     map[string]bool
	stopFn   func()

	probes    atomic.Uint64
	evictions atomic.Uint64
}

// NewHealth returns a checker probing peers and editing ring membership.
// Every peer starts presumed-up; call CheckOnce (or Start) to probe.
func NewHealth(peers []Peer, ring Membership, opts HealthOptions) *Health {
	if opts.HTTPClient == nil {
		opts.HTTPClient = &http.Client{Timeout: 2 * time.Second}
	}
	if opts.FailAfter <= 0 {
		opts.FailAfter = 2
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	return &Health{
		peers:    append([]Peer(nil), peers...),
		ring:     ring,
		hc:       opts.HTTPClient,
		after:    opts.FailAfter,
		logf:     opts.Logf,
		trace:    opts.Trace,
		failures: map[string]int{},
		down:     map[string]bool{},
	}
}

// Probes returns how many individual replica probes have run.
func (h *Health) Probes() uint64 { return h.probes.Load() }

// Evictions returns how many times a replica was removed from the ring.
func (h *Health) Evictions() uint64 { return h.evictions.Load() }

// Up reports whether peer id is currently considered healthy.
func (h *Health) Up(id string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return !h.down[id]
}

// CheckOnce probes every peer once and applies membership changes,
// returning how many peers answered healthy.
func (h *Health) CheckOnce() int {
	healthy := 0
	for _, p := range h.peers {
		h.probes.Add(1)
		if h.probe(p) {
			healthy++
			h.markUp(p)
		} else {
			h.markDown(p)
		}
	}
	return healthy
}

// probe is one /healthz round trip.
func (h *Health) probe(p Peer) bool {
	resp, err := h.hc.Get(p.Base + "/healthz")
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16)) //apollo:errok best-effort drain so the probe connection can be reused
	return resp.StatusCode == http.StatusOK
}

// markUp clears failure state and (re)admits the replica to the ring.
// Ring edits happen outside h.mu: the ring has its own lock and Add on a
// present member is a no-op.
func (h *Health) markUp(p Peer) {
	h.mu.Lock()
	wasDown := h.down[p.ID]
	h.failures[p.ID] = 0
	delete(h.down, p.ID)
	h.mu.Unlock()
	if wasDown {
		h.trace.Emit(looptrace.KindRingReadmit, "", "", looptrace.Fields{Peer: p.ID})
		h.logf("fleet: replica %s recovered, rejoining ring", p.ID)
	}
	h.ring.Add(p.ID)
}

// markDown counts the failure and evicts the replica at the threshold.
func (h *Health) markDown(p Peer) {
	h.mu.Lock()
	h.failures[p.ID]++
	evict := h.failures[p.ID] >= h.after && !h.down[p.ID]
	if evict {
		h.down[p.ID] = true
	}
	h.mu.Unlock()
	if evict {
		h.evictions.Add(1)
		h.trace.Emit(looptrace.KindRingEvict, "", "", looptrace.Fields{Peer: p.ID})
		h.logf("fleet: replica %s failed %d probes, leaving ring", p.ID, h.after)
		h.ring.Remove(p.ID)
	}
}

// Start probes every interval on a background goroutine until the
// returned stop function is called (idempotent, waits for exit).
func (h *Health) Start(interval time.Duration) (stop func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.stopFn != nil {
		return h.stopFn
	}
	stopCh := make(chan struct{})
	doneCh := make(chan struct{})
	go func() {
		defer close(doneCh)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stopCh:
				return
			case <-t.C:
				h.CheckOnce()
			}
		}
	}()
	var once sync.Once
	h.stopFn = func() {
		once.Do(func() { close(stopCh) })
		<-doneCh
	}
	return h.stopFn
}

// ExportMetrics refreshes the health gauges: per-replica up/down and the
// eviction counter-as-gauge (the checker owns the monotonic count).
func (h *Health) ExportMetrics(met *metrics.Metrics) {
	for _, p := range h.peers {
		up := int64(0)
		if h.Up(p.ID) {
			up = 1
		}
		met.GaugeSet("apollo_fleet_replica_up", "replica", p.ID,
			"1 when the replica's last health probe succeeded.", up)
	}
	met.GaugeSet("apollo_fleet_evictions_total", "", "",
		"Replicas evicted from the ring by failed health probes.", int64(h.Evictions()))
}

// String summarizes health state for logs and the inspect tool.
func (h *Health) String() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	up, down := 0, 0
	for _, p := range h.peers {
		if h.down[p.ID] {
			down++
		} else {
			up++
		}
	}
	return fmt.Sprintf("fleet health: %d up, %d down", up, down)
}
