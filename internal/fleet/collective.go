package fleet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"apollo/internal/dataset"
	"apollo/internal/metrics"
	"apollo/internal/telemetry"
)

// MergedCursor unions several telemetry spools — one per fleet replica —
// into a single training stream, so the continuous trainer sees the
// whole fleet's observations of a model as one window. This is the
// collective-training data plane: clients upload to whichever replica
// the ring routes them to, each replica spools what it ingested, and the
// trainer tails all the spools at once. Rows merge in sorted source
// order within a poll, which keeps a retrain reproducible from the same
// spool state.
//
// One unreachable or corrupt spool must not starve the fleet: per-source
// errors are counted and retained (LastErr) while the other sources keep
// flowing. Only a poll where every source fails reports an error.
type MergedCursor struct {
	names   []string // sorted source names, parallel to cursors
	cursors []*telemetry.Cursor

	mu        sync.Mutex //apollo:lockrank 18
	lastErr   error
	rows      []uint64    // rows merged per source
	lastYield []time.Time // when each source last produced rows
	errs      uint64
}

// NewMergedCursor tails one spool directory per source (name -> spool
// dir). Names label the metrics and merge-lag report; replica ids are
// the natural choice.
func NewMergedCursor(sources map[string]string) (*MergedCursor, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("fleet: a merged cursor needs at least one source")
	}
	m := &MergedCursor{}
	for name := range sources {
		m.names = append(m.names, name)
	}
	sort.Strings(m.names)
	now := time.Now()
	for _, name := range m.names {
		m.cursors = append(m.cursors, telemetry.NewCursor(sources[name]))
		m.rows = append(m.rows, 0)
		m.lastYield = append(m.lastYield, now)
	}
	return m, nil
}

// Sources returns the sorted source names.
func (m *MergedCursor) Sources() []string { return append([]string(nil), m.names...) }

// Poll reads every source's newly appended rows and returns their union
// (nil when nothing is new anywhere). The first source fixes the column
// layout; a source whose spool disagrees is counted as an error and
// skipped, like an unreachable one.
//
//apollo:lockok m.mu serializes the trainer-cadence poll and its per-source bookkeeping; never on a launch path
func (m *MergedCursor) Poll() (*dataset.Frame, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var merged *dataset.Frame
	var errs []error
	failed := 0
	for i, cur := range m.cursors {
		f, err := cur.Poll()
		if err != nil {
			failed++
			m.errs++
			errs = append(errs, fmt.Errorf("%s: %w", m.names[i], err))
			continue
		}
		if f == nil || f.Len() == 0 {
			continue
		}
		m.rows[i] += uint64(f.Len())
		m.lastYield[i] = time.Now()
		if merged == nil {
			merged = f
			continue
		}
		if !equalColumns(merged.Cols(), f.Cols()) {
			failed++
			m.errs++
			errs = append(errs, fmt.Errorf("%s: columns %v do not match %v",
				m.names[i], f.Cols(), merged.Cols()))
			continue
		}
		merged.Append(f)
	}
	m.lastErr = errors.Join(errs...)
	if failed == len(m.cursors) {
		return nil, m.lastErr
	}
	return merged, nil
}

// LastErr returns the per-source errors of the most recent poll (nil
// when every source read cleanly).
func (m *MergedCursor) LastErr() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastErr
}

// SourceRows returns the cumulative rows merged per source.
func (m *MergedCursor) SourceRows() map[string]uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]uint64, len(m.names))
	for i, name := range m.names {
		out[name] = m.rows[i]
	}
	return out
}

// MergeLag returns, per source, how long it has been since that source
// last yielded rows — the collective-merge lag. A replica whose clients
// stopped reaching it (or whose spool share went to zero after a ring
// change) shows up here long before its spool is archaeology.
func (m *MergedCursor) MergeLag(now time.Time) map[string]time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]time.Duration, len(m.names))
	for i, name := range m.names {
		out[name] = now.Sub(m.lastYield[i])
	}
	return out
}

// ExportMetrics refreshes the collective-merge gauges on met.
func (m *MergedCursor) ExportMetrics(met *metrics.Metrics) {
	m.mu.Lock()
	names := append([]string(nil), m.names...)
	rows := append([]uint64(nil), m.rows...)
	yields := append([]time.Time(nil), m.lastYield...)
	errs := m.errs
	m.mu.Unlock()
	now := time.Now()
	for i, name := range names {
		met.GaugeSet("apollo_fleet_merge_rows_total", "source", name,
			"Telemetry rows merged into the collective window, by source spool.", int64(rows[i]))
		met.GaugeSet("apollo_fleet_merge_lag_seconds", "source", name,
			"Seconds since each source spool last yielded rows.", int64(now.Sub(yields[i]).Seconds()))
	}
	met.GaugeSet("apollo_fleet_merge_errors_total", "", "",
		"Failed per-source polls while merging the collective window.", int64(errs))
}

func equalColumns(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
