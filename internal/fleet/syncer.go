package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"apollo/internal/looptrace"
	"apollo/internal/metrics"
	"apollo/internal/registry"
)

// maxSyncModelBytes caps a pulled model body (matches the server's PUT
// cap; trained trees are tens of kilobytes).
const maxSyncModelBytes = 16 << 20

// SyncerOptions tunes a Syncer; the zero value picks defaults.
type SyncerOptions struct {
	// HTTPClient overrides the pull transport (default 5s timeout).
	HTTPClient *http.Client
	// Logf receives pull/skip diagnostics (default: discard).
	Logf func(format string, args ...any)
	// Trace (optional) receives one sync-pull loop event per model
	// pulled from a peer, correlated with the retrain cycle via the
	// pulled envelope's lineage block. Nil disables emission.
	Trace *looptrace.Tracer
}

// Syncer is the delta model-distribution half of the fleet layer: it
// polls each peer's model list and pulls every model whose version is
// strictly ahead of the local registry's, installing the peer's raw
// envelope through PublishRaw. Because the registry's envelope
// marshaling is deterministic, a model pulled this way lands with the
// same version and the same content ETag on every replica — which is
// exactly the convergence the serving clients' conditional GETs key on.
// Version ties with differing ETags (two replicas independently
// publishing the same version) are never pulled — they are surfaced as
// the divergence counter so an operator sees a split champion instead
// of the fleet ping-ponging versions upward forever.
type Syncer struct {
	reg   *registry.Registry
	peers []Peer
	hc    *http.Client
	logf  func(format string, args ...any)
	trace *looptrace.Tracer

	mu     sync.Mutex //apollo:lockrank 17
	stopFn func()

	pulls       atomic.Uint64 // models pulled from peers
	errors      atomic.Uint64 // failed list or pull round trips
	divergences atomic.Uint64 // same-version different-ETag sightings
}

// NewSyncer returns a syncer that converges reg onto the newest model
// versions its peers hold. The local replica must not list itself as a
// peer (it would pull its own publishes — harmless but wasteful).
func NewSyncer(reg *registry.Registry, peers []Peer, opts SyncerOptions) *Syncer {
	if opts.HTTPClient == nil {
		opts.HTTPClient = &http.Client{Timeout: 5 * time.Second}
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	return &Syncer{
		reg:   reg,
		peers: append([]Peer(nil), peers...),
		hc:    opts.HTTPClient,
		logf:  opts.Logf,
		trace: opts.Trace,
	}
}

// Pulls returns how many model versions have been pulled from peers.
func (s *Syncer) Pulls() uint64 { return s.pulls.Load() }

// Errors returns how many peer round trips failed.
func (s *Syncer) Errors() uint64 { return s.errors.Load() }

// Divergences returns how many same-version/different-ETag conflicts
// have been observed (a split champion needs operator attention).
func (s *Syncer) Divergences() uint64 { return s.divergences.Load() }

// peerModel mirrors the server's /models list entry.
type peerModel struct {
	Name    string `json:"name"`
	Version int    `json:"version"`
	ETag    string `json:"etag"`
}

// SyncOnce polls every peer once and returns how many models it pulled.
// A peer that is down just counts an error — the fleet keeps serving.
func (s *Syncer) SyncOnce() int {
	pulled := 0
	for _, p := range s.peers {
		n, err := s.syncPeer(p)
		pulled += n
		if err != nil {
			s.errors.Add(1)
			s.logf("fleet: sync %s: %v", p.ID, err)
		}
	}
	return pulled
}

// syncPeer diffs one peer's list against the local registry and pulls
// what is strictly newer.
func (s *Syncer) syncPeer(p Peer) (int, error) {
	resp, err := s.hc.Get(p.Base + "/models")
	if err != nil {
		return 0, err
	}
	var list struct {
		Models []peerModel `json:"models"`
	}
	err = json.NewDecoder(io.LimitReader(resp.Body, maxSyncModelBytes)).Decode(&list)
	resp.Body.Close() //apollo:errok probe body already drained; the reachability verdict is recorded
	if err != nil {
		return 0, fmt.Errorf("decoding model list: %w", err)
	}
	pulled := 0
	for _, m := range list.Models {
		local, ok := s.reg.Get(m.Name)
		if ok {
			if m.Version < local.Version {
				continue
			}
			if m.Version == local.Version {
				if m.ETag != local.ETag {
					s.divergences.Add(1)
					s.logf("fleet: %s v%d diverged from %s (etag %s vs %s)",
						m.Name, m.Version, p.ID, local.ETag, m.ETag)
				}
				continue
			}
		}
		if err := s.pull(p, m); err != nil {
			s.errors.Add(1)
			s.logf("fleet: pulling %s v%d from %s: %v", m.Name, m.Version, p.ID, err)
			continue
		}
		pulled++
	}
	return pulled, nil
}

// pull fetches one model envelope and installs it locally. PublishRaw
// honors the envelope's own (ahead) version, so the version number — and
// with deterministic marshaling, the ETag — carries over unchanged.
func (s *Syncer) pull(p Peer, m peerModel) error {
	start := time.Now()
	resp, err := s.hc.Get(p.Base + "/models/" + m.Name)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16)) //apollo:errok best-effort drain so the connection can be reused
		return fmt.Errorf("%s", resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxSyncModelBytes))
	if err != nil {
		return err
	}
	e, err := s.reg.PublishRaw(m.Name, data)
	if err != nil {
		return err
	}
	s.pulls.Add(1)
	loop, parent := "", 0
	if e.Lineage != nil {
		loop, parent = e.Lineage.LoopID, e.Lineage.ParentVersion
	}
	s.trace.Emit(looptrace.KindSyncPull, e.Name, loop, looptrace.Fields{
		Version: int32(e.Version), Parent: int32(parent),
		DurNS: float64(time.Since(start)), Peer: p.ID,
	})
	s.logf("fleet: pulled %s v%d from %s", e.Name, e.Version, p.ID)
	return nil
}

// Start syncs every interval on a background goroutine until the
// returned stop function is called (idempotent, waits for exit).
// onPull (optional) fires after every round that pulled at least one
// model, with the count — the daemon uses it to refresh version gauges.
func (s *Syncer) Start(interval time.Duration, onPull func(n int)) (stop func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopFn != nil {
		return s.stopFn
	}
	stopCh := make(chan struct{})
	doneCh := make(chan struct{})
	go func() {
		defer close(doneCh)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stopCh:
				return
			case <-t.C:
				if n := s.SyncOnce(); n > 0 && onPull != nil {
					onPull(n)
				}
			}
		}
	}()
	var once sync.Once
	s.stopFn = func() {
		once.Do(func() { close(stopCh) })
		<-doneCh
	}
	return s.stopFn
}

// ExportMetrics refreshes the syncer gauges on met.
func (s *Syncer) ExportMetrics(met *metrics.Metrics) {
	met.GaugeSet("apollo_fleet_sync_pulls_total", "", "",
		"Model versions pulled from peer replicas.", int64(s.Pulls()))
	met.GaugeSet("apollo_fleet_sync_errors_total", "", "",
		"Failed peer sync round trips.", int64(s.Errors()))
	met.GaugeSet("apollo_fleet_sync_divergences_total", "", "",
		"Same-version different-ETag conflicts observed across peers.", int64(s.Divergences()))
}
