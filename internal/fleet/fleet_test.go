package fleet

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"apollo/internal/core"
	"apollo/internal/dataset"
	"apollo/internal/features"
	"apollo/internal/fleet/hashring"
	"apollo/internal/raja"
	"apollo/internal/registry"
	"apollo/internal/server"
	"apollo/internal/telemetry"
)

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers(" r2=http://b:8080, r1=http://a:8080 ,")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers[0].ID != "r1" || peers[1].Base != "http://b:8080" {
		t.Fatalf("parsed %+v", peers)
	}
	if _, err := ParsePeers("r1=http://a,r1=http://b"); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if _, err := ParsePeers("=http://a"); err == nil {
		t.Fatal("empty id accepted")
	}
	if peers, err = ParsePeers("  "); err != nil || peers != nil {
		t.Fatalf("blank flag: %v %v", peers, err)
	}
	m := PeerMap([]Peer{{ID: "x", Base: "http://x"}})
	if m["x"] != "http://x" {
		t.Fatalf("PeerMap: %v", m)
	}
}

// trainModel builds a small real model so publishes carry honest
// schema hashes and deterministic envelopes.
func trainModel(t *testing.T, scale float64) *core.Model {
	t.Helper()
	schema := features.TableI()
	frame := dataset.NewFrame(core.RecordColumns(schema)...)
	ni := schema.Index(features.NumIndices)
	for _, n := range []int{32, 512, 8192, 131072} {
		for _, pol := range []raja.Policy{raja.SeqExec, raja.OmpParallelForExec} {
			row := make([]float64, schema.Len()+3)
			row[ni] = float64(n)
			row[schema.Len()] = float64(pol)
			if pol == raja.SeqExec {
				row[schema.Len()+2] = float64(n) * 10 * scale
			} else {
				row[schema.Len()+2] = 8000 + float64(n)*scale
			}
			frame.AddRow(row)
		}
	}
	set, err := core.Label(frame, schema, core.ExecutionPolicy)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Train(set, core.TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// newReplica stands up one in-process model service.
func newReplica(t *testing.T) (*registry.Registry, *httptest.Server) {
	t.Helper()
	reg := registry.New()
	ts := httptest.NewServer(server.New(reg, server.WithTelemetryDir(t.TempDir())).Handler())
	t.Cleanup(ts.Close)
	return reg, ts
}

func TestSyncerConvergesVersionAndETag(t *testing.T) {
	regA, tsA := newReplica(t)
	regB, tsB := newReplica(t)

	// v1 everywhere, then v2 only on A: B must pull it with the version
	// and content ETag intact (delta distribution, not re-publication).
	m1 := trainModel(t, 1)
	if _, err := regA.Publish("lulesh/policy", m1); err != nil {
		t.Fatal(err)
	}
	if _, err := regB.Publish("lulesh/policy", m1); err != nil {
		t.Fatal(err)
	}
	if _, err := regA.Publish("lulesh/policy", trainModel(t, 3)); err != nil {
		t.Fatal(err)
	}

	sB := NewSyncer(regB, []Peer{{ID: "a", Base: tsA.URL}}, SyncerOptions{Logf: t.Logf})
	if n := sB.SyncOnce(); n != 1 {
		t.Fatalf("pulled %d models, want 1 (errors=%d)", n, sB.Errors())
	}
	ea, _ := regA.Get("lulesh/policy")
	eb, ok := regB.Get("lulesh/policy")
	if !ok || eb.Version != ea.Version || eb.ETag != ea.ETag {
		t.Fatalf("no convergence: A v%d %s, B v%d %s", ea.Version, ea.ETag, eb.Version, eb.ETag)
	}
	// A second round is a no-op: nothing newer anywhere.
	if n := sB.SyncOnce(); n != 0 {
		t.Fatalf("steady-state round pulled %d models", n)
	}

	// Syncing A against B must not pull the same version back (no
	// version ping-pong once converged).
	sA := NewSyncer(regA, []Peer{{ID: "b", Base: tsB.URL}}, SyncerOptions{Logf: t.Logf})
	if n := sA.SyncOnce(); n != 0 {
		t.Fatalf("converged fleet still pulled %d models", n)
	}
	if sA.Divergences() != 0 || sB.Divergences() != 0 {
		t.Fatal("converged fleet reported divergence")
	}
}

func TestSyncerCountsDivergenceInsteadOfPulling(t *testing.T) {
	regA, tsA := newReplica(t)
	regB, _ := newReplica(t)

	// Independent publishes of the same version with different content:
	// a split champion. The syncer must flag it, not paper over it.
	if _, err := regA.Publish("lulesh/policy", trainModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := regB.Publish("lulesh/policy", trainModel(t, 7)); err != nil {
		t.Fatal(err)
	}
	before, _ := regB.Get("lulesh/policy")

	s := NewSyncer(regB, []Peer{{ID: "a", Base: tsA.URL}}, SyncerOptions{Logf: t.Logf})
	if n := s.SyncOnce(); n != 0 {
		t.Fatalf("diverged same-version model was pulled (%d)", n)
	}
	if s.Divergences() != 1 {
		t.Fatalf("divergences = %d, want 1", s.Divergences())
	}
	after, _ := regB.Get("lulesh/policy")
	if after.ETag != before.ETag {
		t.Fatal("divergence handling rewrote the local model")
	}
}

func TestSyncerToleratesDeadPeer(t *testing.T) {
	regA, tsA := newReplica(t)
	regB, _ := newReplica(t)
	if _, err := regA.Publish("lulesh/policy", trainModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	s := NewSyncer(regB, []Peer{{ID: "dead", Base: dead.URL}, {ID: "a", Base: tsA.URL}},
		SyncerOptions{Logf: t.Logf})
	if n := s.SyncOnce(); n != 1 {
		t.Fatalf("live peer not synced past the dead one (pulled %d)", n)
	}
	if s.Errors() == 0 {
		t.Fatal("dead peer did not count as an error")
	}
}

func TestHealthEvictsAndReadmits(t *testing.T) {
	var sick atomic.Bool
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if sick.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer flaky.Close()
	_, healthy := newReplica(t)

	ring := hashring.New(64)
	ring.Add("flaky")
	ring.Add("steady")
	h := NewHealth([]Peer{{ID: "flaky", Base: flaky.URL}, {ID: "steady", Base: healthy.URL}},
		ring, HealthOptions{FailAfter: 2, Logf: t.Logf})

	if n := h.CheckOnce(); n != 2 {
		t.Fatalf("healthy probe round: %d up, want 2", n)
	}
	sick.Store(true)
	h.CheckOnce() // one failure: below threshold, membership must not churn
	if ring.Len() != 2 || !h.Up("flaky") {
		t.Fatal("single failed probe reshuffled the ring")
	}
	h.CheckOnce() // second consecutive failure: eviction
	if ring.Len() != 1 || h.Up("flaky") {
		t.Fatalf("flaky replica not evicted (ring len %d)", ring.Len())
	}
	if ring.Lookup("anything") != "steady" {
		t.Fatal("keys not rerouted to the survivor")
	}
	if h.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", h.Evictions())
	}
	sick.Store(false)
	h.CheckOnce() // first success readmits immediately
	if ring.Len() != 2 || !h.Up("flaky") {
		t.Fatal("recovered replica not readmitted")
	}
	if h.Probes() != 8 {
		t.Fatalf("probes = %d, want 8", h.Probes())
	}
}

func TestHealthStartStopIdempotent(t *testing.T) {
	_, ts := newReplica(t)
	ring := hashring.New(64)
	ring.Add("a")
	h := NewHealth([]Peer{{ID: "a", Base: ts.URL}}, ring, HealthOptions{})
	stop := h.Start(time.Millisecond)
	if again := h.Start(time.Millisecond); again == nil {
		t.Fatal("second Start returned nil stop")
	}
	deadline := time.Now().Add(2 * time.Second)
	for h.Probes() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if h.Probes() == 0 {
		t.Fatal("background checker never probed")
	}
	stop()
	stop() // must not panic or hang
}

// fillSpool appends n rows under the standard record layout.
func fillSpool(t *testing.T, dir string, n int, base float64) {
	t.Helper()
	sp, err := telemetry.OpenSpool(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cols := core.RecordColumns(features.TableI())
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, len(cols))
		row[0] = base + float64(i)
		rows[i] = row
	}
	if err := sp.Append(cols, rows); err != nil {
		t.Fatal(err)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMergedCursorUnionsSpools(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	fillSpool(t, dirA, 3, 100)
	fillSpool(t, dirB, 5, 200)
	m, err := NewMergedCursor(map[string]string{"a": dirA, "b": dirB})
	if err != nil {
		t.Fatal(err)
	}
	f, err := m.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if f == nil || f.Len() != 8 {
		t.Fatalf("merged %v rows, want 8", f)
	}
	if rows := m.SourceRows(); rows["a"] != 3 || rows["b"] != 5 {
		t.Fatalf("per-source rows %v", rows)
	}
	// Nothing new: quiet poll.
	if f, err = m.Poll(); err != nil || f != nil {
		t.Fatalf("quiet poll returned %v, %v", f, err)
	}
	// New rows on one source only still flow.
	fillSpool(t, dirB, 2, 300)
	if f, err = m.Poll(); err != nil || f == nil || f.Len() != 2 {
		t.Fatalf("incremental poll returned %v, %v", f, err)
	}
	lag := m.MergeLag(time.Now().Add(time.Hour))
	if lag["a"] <= lag["b"] {
		t.Fatalf("idle source does not show more lag: %v", lag)
	}
}

func TestMergedCursorSkipsMismatchedSource(t *testing.T) {
	dirA, dirBad := t.TempDir(), t.TempDir()
	fillSpool(t, dirA, 4, 0)
	sp, err := telemetry.OpenSpool(dirBad, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Append([]string{"wrong", "layout"}, [][]float64{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	sp.Close()
	m, err := NewMergedCursor(map[string]string{"a": dirA, "z": dirBad})
	if err != nil {
		t.Fatal(err)
	}
	f, err := m.Poll()
	if err != nil {
		t.Fatalf("healthy source blocked by mismatched one: %v", err)
	}
	if f == nil || f.Len() != 4 {
		t.Fatalf("merged %v rows, want 4 from the healthy source", f)
	}
	if m.LastErr() == nil {
		t.Fatal("column mismatch not surfaced in LastErr")
	}
	if _, err := NewMergedCursor(nil); err == nil {
		t.Fatal("empty source set accepted")
	}
}

func TestMergedCursorToleratesAbsentSpool(t *testing.T) {
	dirA := t.TempDir()
	fillSpool(t, dirA, 2, 0)
	// "ghost" points at a spool directory that does not exist yet — a
	// replica that has ingested nothing. It must read as empty.
	m, err := NewMergedCursor(map[string]string{"a": dirA, "ghost": t.TempDir() + "/never"})
	if err != nil {
		t.Fatal(err)
	}
	f, err := m.Poll()
	if err != nil || f == nil || f.Len() != 2 {
		t.Fatalf("poll with absent source: %v, %v", f, err)
	}
}
