package caliper

import (
	"reflect"
	"sync"
	"testing"
)

func TestSetAndGet(t *testing.T) {
	a := New()
	a.Set("timestep", 7)
	if v, ok := a.Get("timestep"); !ok || v != 7 {
		t.Errorf("Get = %g, %v", v, ok)
	}
	if _, ok := a.Get("missing"); ok {
		t.Error("Get of unset attribute reported ok")
	}
	if got := a.GetOr("missing", -1); got != -1 {
		t.Errorf("GetOr default = %g", got)
	}
}

func TestScopedBeginEnd(t *testing.T) {
	a := New()
	a.Set("patch_id", 1)
	a.Begin("patch_id", 2)
	if v, _ := a.Get("patch_id"); v != 2 {
		t.Errorf("inner scope = %g, want 2", v)
	}
	a.Begin("patch_id", 3)
	if v, _ := a.Get("patch_id"); v != 3 {
		t.Errorf("innermost scope = %g, want 3", v)
	}
	a.End("patch_id")
	if v, _ := a.Get("patch_id"); v != 2 {
		t.Errorf("after one End = %g, want 2", v)
	}
	a.End("patch_id")
	if v, _ := a.Get("patch_id"); v != 1 {
		t.Errorf("after two Ends = %g, want 1", v)
	}
	a.End("patch_id")
	if _, ok := a.Get("patch_id"); ok {
		t.Error("attribute should be unset after popping the base value")
	}
	a.End("patch_id") // extra End must be a no-op
}

func TestSetClearsScopeStack(t *testing.T) {
	a := New()
	a.Begin("x", 1)
	a.Begin("x", 2)
	a.Set("x", 9)
	a.End("x")
	if _, ok := a.Get("x"); ok {
		t.Error("Set should replace the whole stack with one value")
	}
}

func TestSnapshotAndKeys(t *testing.T) {
	a := New()
	a.Set("b", 2)
	a.Set("a", 1)
	a.Begin("c", 3)
	snap := a.Snapshot()
	want := map[string]float64{"a": 1, "b": 2, "c": 3}
	if !reflect.DeepEqual(snap, want) {
		t.Errorf("Snapshot = %v, want %v", snap, want)
	}
	if keys := a.Keys(); !reflect.DeepEqual(keys, []string{"a", "b", "c"}) {
		t.Errorf("Keys = %v", keys)
	}
	a.Clear()
	if len(a.Snapshot()) != 0 {
		t.Error("Clear left attributes behind")
	}
}

func TestEncodeStableAndDistinct(t *testing.T) {
	if Encode("sedov") != Encode("sedov") {
		t.Error("Encode not deterministic")
	}
	names := []string{"sedov", "sod", "triple_pt", "jet", "hotspot"}
	seen := map[float64]string{}
	for _, n := range names {
		v := Encode(n)
		if prev, dup := seen[v]; dup {
			t.Errorf("Encode collision: %q and %q -> %g", prev, n, v)
		}
		seen[v] = n
	}
}

func TestSetStringMatchesEncode(t *testing.T) {
	a := New()
	a.SetString("problem_name", "sedov")
	if v, _ := a.Get("problem_name"); v != Encode("sedov") {
		t.Errorf("SetString stored %g, want %g", v, Encode("sedov"))
	}
}

func TestConcurrentAccessIsSafe(t *testing.T) {
	a := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				a.Begin("k", float64(i))
				a.Get("k")
				a.Snapshot()
				a.End("k")
			}
		}(g)
	}
	wg.Wait()
}
