// Package caliper is a lightweight annotation system, standing in for the
// LLNL Caliper library the paper uses to measure kernel runtimes and to
// attach arbitrary application-level attribute/value pairs (timestep,
// problem size, patch dimensions, ...) to each kernel sample.
//
// Applications push scoped attributes onto a blackboard; when Apollo's
// recorder captures a kernel execution it snapshots the current attribute
// values into the sample's feature vector. String-valued attributes (such
// as problem_name) are encoded as stable numeric IDs so that the decision
// trees, which split on numeric thresholds, can consume them — the same
// ordinal encoding the paper's Python pipeline applies.
package caliper

import (
	"sort"
	"sync"
)

// Encode maps a string attribute value to a stable numeric code. The code
// is a deterministic hash of the string (FNV-1a 32), so it is identical
// across runs, processes, and applications — a requirement for the paper's
// cross-application experiments (Table III), where a model trained on one
// application's samples must see the same encoding in another's. The hash
// is inlined over the string so feature extraction on the launch path
// allocates nothing.
func Encode(s string) float64 {
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return float64(h)
}

// Annotations is a thread-safe blackboard of named attribute stacks.
// The zero value is not ready for use; call New.
type Annotations struct {
	mu     sync.RWMutex
	stacks map[string][]float64
}

// New returns an empty annotation blackboard.
func New() *Annotations {
	return &Annotations{stacks: make(map[string][]float64)}
}

// Set replaces the current value of the attribute (clearing any scope
// stack below it).
func (a *Annotations) Set(key string, value float64) {
	a.mu.Lock()
	a.stacks[key] = append(a.stacks[key][:0], value)
	a.mu.Unlock()
}

// SetString replaces the attribute with the encoded string value.
func (a *Annotations) SetString(key, value string) {
	a.Set(key, Encode(value))
}

// Begin pushes a scoped value for the attribute. Each Begin must be
// matched by an End with the same key.
func (a *Annotations) Begin(key string, value float64) {
	a.mu.Lock()
	a.stacks[key] = append(a.stacks[key], value)
	a.mu.Unlock()
}

// End pops the innermost scoped value of the attribute. Ending an
// attribute with no open scope is a no-op.
func (a *Annotations) End(key string) {
	a.mu.Lock()
	if st := a.stacks[key]; len(st) > 0 {
		a.stacks[key] = st[:len(st)-1]
	}
	a.mu.Unlock()
}

// Get returns the current (innermost) value of the attribute.
func (a *Annotations) Get(key string) (float64, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	st := a.stacks[key]
	if len(st) == 0 {
		return 0, false
	}
	return st[len(st)-1], true
}

// GetOr returns the current value of the attribute, or def if unset.
func (a *Annotations) GetOr(key string, def float64) float64 {
	if v, ok := a.Get(key); ok {
		return v
	}
	return def
}

// Snapshot returns the current value of every set attribute.
func (a *Annotations) Snapshot() map[string]float64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make(map[string]float64, len(a.stacks))
	for k, st := range a.stacks {
		if len(st) > 0 {
			out[k] = st[len(st)-1]
		}
	}
	return out
}

// Keys returns the names of all currently set attributes, sorted.
func (a *Annotations) Keys() []string {
	a.mu.RLock()
	keys := make([]string, 0, len(a.stacks))
	for k, st := range a.stacks {
		if len(st) > 0 {
			keys = append(keys, k)
		}
	}
	a.mu.RUnlock()
	sort.Strings(keys)
	return keys
}

// Clear removes every attribute.
func (a *Annotations) Clear() {
	a.mu.Lock()
	a.stacks = make(map[string][]float64)
	a.mu.Unlock()
}
