// Package caliper is a lightweight annotation system, standing in for the
// LLNL Caliper library the paper uses to measure kernel runtimes and to
// attach arbitrary application-level attribute/value pairs (timestep,
// problem size, patch dimensions, ...) to each kernel sample.
//
// Applications push scoped attributes onto a blackboard; when Apollo's
// recorder captures a kernel execution it snapshots the current attribute
// values into the sample's feature vector. String-valued attributes (such
// as problem_name) are encoded as stable numeric IDs so that the decision
// trees, which split on numeric thresholds, can consume them — the same
// ordinal encoding the paper's Python pipeline applies.
package caliper

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Encode maps a string attribute value to a stable numeric code. The code
// is a deterministic hash of the string (FNV-1a 32), so it is identical
// across runs, processes, and applications — a requirement for the paper's
// cross-application experiments (Table III), where a model trained on one
// application's samples must see the same encoding in another's. The hash
// is inlined over the string so feature extraction on the launch path
// allocates nothing.
func Encode(s string) float64 {
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return float64(h)
}

// Annotations is a thread-safe blackboard of named attribute stacks.
// Reads are lock-free: the stack map is copy-on-write, published through
// an atomic pointer, because Get sits on the kernel-launch hot path
// (feature extraction reads application attributes per launch) while
// writes happen at scope boundaries like timesteps, orders of magnitude
// rarer. The zero value is not ready for use; call New.
type Annotations struct {
	// mu serializes writers; readers never take it.
	mu  sync.Mutex
	cur atomic.Pointer[map[string][]float64]
}

// New returns an empty annotation blackboard.
func New() *Annotations {
	a := &Annotations{}
	m := make(map[string][]float64)
	a.cur.Store(&m)
	return a
}

// mutate republishes the stack map with key's stack replaced by
// f(old stack). Both the map and the changed stack are fresh copies, so
// readers of the previous snapshot are never disturbed.
func (a *Annotations) mutate(key string, f func(st []float64) []float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	old := *a.cur.Load()
	next := make(map[string][]float64, len(old)+1)
	for k, st := range old {
		next[k] = st
	}
	next[key] = f(append([]float64(nil), old[key]...))
	a.cur.Store(&next)
}

// Set replaces the current value of the attribute (clearing any scope
// stack below it).
func (a *Annotations) Set(key string, value float64) {
	a.mutate(key, func(st []float64) []float64 { return append(st[:0], value) })
}

// SetString replaces the attribute with the encoded string value.
func (a *Annotations) SetString(key, value string) {
	a.Set(key, Encode(value))
}

// Begin pushes a scoped value for the attribute. Each Begin must be
// matched by an End with the same key.
func (a *Annotations) Begin(key string, value float64) {
	a.mutate(key, func(st []float64) []float64 { return append(st, value) })
}

// End pops the innermost scoped value of the attribute. Ending an
// attribute with no open scope is a no-op.
func (a *Annotations) End(key string) {
	a.mutate(key, func(st []float64) []float64 {
		if len(st) == 0 {
			return st
		}
		return st[:len(st)-1]
	})
}

// Get returns the current (innermost) value of the attribute.
//
//apollo:hotpath
func (a *Annotations) Get(key string) (float64, bool) {
	st := (*a.cur.Load())[key]
	if len(st) == 0 {
		return 0, false
	}
	return st[len(st)-1], true
}

// GetOr returns the current value of the attribute, or def if unset.
//
//apollo:hotpath
func (a *Annotations) GetOr(key string, def float64) float64 {
	if v, ok := a.Get(key); ok {
		return v
	}
	return def
}

// Snapshot returns the current value of every set attribute.
func (a *Annotations) Snapshot() map[string]float64 {
	stacks := *a.cur.Load()
	out := make(map[string]float64, len(stacks))
	for k, st := range stacks {
		if len(st) > 0 {
			out[k] = st[len(st)-1]
		}
	}
	return out
}

// Keys returns the names of all currently set attributes, sorted.
func (a *Annotations) Keys() []string {
	stacks := *a.cur.Load()
	keys := make([]string, 0, len(stacks))
	for k, st := range stacks {
		if len(st) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Clear removes every attribute.
func (a *Annotations) Clear() {
	a.mu.Lock()
	defer a.mu.Unlock()
	m := make(map[string][]float64)
	a.cur.Store(&m)
}
