package caliper

import "testing"

// Get is //apollo:hotpath (feature extraction reads the blackboard on
// every kernel launch); the copy-on-write rework must keep it lock-free
// and allocation-free.
func TestGetAllocationFree(t *testing.T) {
	a := New()
	a.Set("timestep", 42)
	a.Begin("patch", 7)
	allocs := testing.AllocsPerRun(200, func() {
		if v, ok := a.Get("timestep"); !ok || v != 42 {
			t.Fatal("lost attribute")
		}
		if got := a.GetOr("patch", 0); got != 7 {
			t.Fatal("lost scoped attribute")
		}
	})
	if allocs != 0 {
		t.Errorf("Annotations.Get allocates %.1f objects per call, want 0", allocs)
	}
}

// Scoped begin/end semantics must survive the copy-on-write rework:
// concurrent readers see either the old or the new snapshot, and pops
// restore outer scopes.
func TestScopesAcrossSnapshots(t *testing.T) {
	a := New()
	a.Set("k", 1)
	a.Begin("k", 2)
	if v, _ := a.Get("k"); v != 2 {
		t.Fatalf("inner scope = %g, want 2", v)
	}
	a.End("k")
	if v, _ := a.Get("k"); v != 1 {
		t.Fatalf("outer scope = %g, want 1", v)
	}
	a.End("k")
	if _, ok := a.Get("k"); ok {
		t.Fatal("empty stack still readable")
	}
	a.End("k") // popping an empty stack stays a no-op
}
