package ares

import (
	"math"
	"testing"

	"apollo/internal/app"
	"apollo/internal/caliper"
	"apollo/internal/features"
	"apollo/internal/platform"
	"apollo/internal/raja"
	"apollo/internal/tuner"
)

func newSim(t *testing.T, problem string) *Sim {
	t.Helper()
	clk := platform.NewSimClock(platform.SandyBridgeNode(), 0, 0)
	ctx := raja.NewSimContext(clk, raja.Params{Policy: raja.SeqExec})
	s, err := New(app.Config{Ctx: ctx, Ann: caliper.New(), Problem: problem, Size: 32})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidates(t *testing.T) {
	clk := platform.NewSimClock(platform.SandyBridgeNode(), 0, 0)
	ctx := raja.NewSimContext(clk, raja.Params{})
	if _, err := New(app.Config{Ctx: ctx, Problem: "sod", Size: 32}); err == nil {
		t.Error("ARES should not accept the Sod deck")
	}
	if _, err := New(app.Config{Ctx: ctx, Problem: "jet", Size: 4}); err == nil {
		t.Error("tiny size accepted")
	}
}

func TestMaterialCounts(t *testing.T) {
	cases := map[string]int{"sedov": 2, "jet": 3, "hotspot": 4}
	for problem, want := range cases {
		s := newSim(t, problem)
		if s.NumMaterials() != want {
			t.Errorf("%s: materials = %d, want %d", problem, s.NumMaterials(), want)
		}
	}
}

func TestVolumeFractionsPartitionUnity(t *testing.T) {
	s := newSim(t, "hotspot")
	for i := 0; i < 4; i++ {
		s.Step()
	}
	for _, p := range s.Hierarchy().Patches() {
		n := p.Box.Count()
		for k := 0; k < n; k += 7 {
			i, j := p.Field(FRho).CellOf(k)
			var sum float64
			for m := 0; m < s.NumMaterials(); m++ {
				v := p.Field("vof_"+string(rune('0'+m))).At(i, j)
				if v < -1e-9 || v > 1+1e-9 {
					t.Fatalf("vof out of range: %g", v)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-6 {
				t.Fatalf("vof sum = %g at patch %d cell (%d,%d)", sum, p.ID, i, j)
			}
		}
	}
}

func TestMaterialsMixOverTime(t *testing.T) {
	s := newSim(t, "jet")
	initial := s.MixedCellCount()
	for i := 0; i < 10; i++ {
		s.Step()
	}
	final := s.MixedCellCount()
	if final <= initial {
		t.Errorf("mixed cells did not grow: %d -> %d", initial, final)
	}
}

func TestStepStaysFinite(t *testing.T) {
	for _, problem := range []string{"sedov", "jet", "hotspot"} {
		s := newSim(t, problem)
		for i := 0; i < 6; i++ {
			s.Step()
		}
		if s.Time() <= 0 || s.Cycle() != 6 {
			t.Errorf("%s: time/cycle wrong", problem)
		}
		for _, p := range s.Hierarchy().Patches() {
			lo, hi := p.Field(FRho).MinMaxInterior()
			if math.IsNaN(lo) || math.IsInf(hi, 0) || lo <= 0 {
				t.Fatalf("%s: density invalid on patch %d: [%g,%g]", problem, p.ID, lo, hi)
			}
		}
	}
}

func TestExtraPhysicsOnlyForJetAndHotspot(t *testing.T) {
	rec := func(problem string) map[string]bool {
		schema := features.TableI()
		ann := caliper.New()
		r := tuner.NewRecorder(schema, ann, raja.Params{Policy: raja.SeqExec})
		clk := platform.NewSimClock(platform.SandyBridgeNode(), 0, 0)
		ctx := raja.NewSimContext(clk, raja.Params{})
		ctx.Hooks = r
		s, err := New(app.Config{Ctx: ctx, Ann: ann, Problem: problem, Size: 32})
		if err != nil {
			t.Fatal(err)
		}
		s.Step()
		seen := map[string]bool{}
		frame := r.Frame()
		for i := 0; i < frame.Len(); i++ {
			if frame.At(i, features.Func) == caliper.Encode(kRadDiffusion.Name) {
				seen["rad"] = true
			}
		}
		return seen
	}
	if rec("sedov")["rad"] {
		t.Error("sedov deck ran the radiation package")
	}
	if !rec("hotspot")["rad"] {
		t.Error("hotspot deck did not run the radiation package")
	}
}

func TestUnportedPhaseIsNotRecorded(t *testing.T) {
	schema := features.TableI()
	ann := caliper.New()
	rec := tuner.NewRecorder(schema, ann, raja.Params{Policy: raja.SeqExec})
	clk := platform.NewSimClock(platform.SandyBridgeNode(), 0, 0)
	ctx := raja.NewSimContext(clk, raja.Params{})
	ctx.Hooks = rec
	s, err := New(app.Config{Ctx: ctx, Ann: ann, Problem: "sedov", Size: 32})
	if err != nil {
		t.Fatal(err)
	}
	before := clk.NowNS()
	s.Step()
	if clk.NowNS() <= before {
		t.Fatal("clock did not advance")
	}
	frame := rec.Frame()
	unportedCode := caliper.Encode(kUnported.Name)
	for i := 0; i < frame.Len(); i++ {
		if frame.At(i, features.Func) == unportedCode {
			t.Fatal("unported physics leaked into Apollo's training samples")
		}
	}
}

func TestDefaultAssignmentCoversAllKernels(t *testing.T) {
	assign := DefaultAssignment()
	for _, k := range Kernels() {
		if _, ok := assign[k.Name]; !ok {
			t.Errorf("kernel %s has no developer assignment", k.Name)
		}
	}
	// Material kernels must be serial, interior kernels parallel, per
	// the paper's description of the hand-assigned defaults.
	if assign[kMixRelax.Name].Policy != raja.SeqExec {
		t.Error("mix kernels should default to serial")
	}
	if assign[kRemapRhoX.Name].Policy != raja.OmpParallelForExec {
		t.Error("remap kernels should default to OpenMP")
	}
}

func TestStaticHooks(t *testing.T) {
	h := &StaticHooks{
		Assignment: map[string]raja.Params{"a": {Policy: raja.SeqExec}},
		Fallback:   raja.Params{Policy: raja.OmpParallelForExec},
	}
	ka := raja.NewKernel("a", nil)
	kb := raja.NewKernel("b", nil)
	if p, _ := h.Begin(ka, raja.NewRange(0, 1)); p.Policy != raja.SeqExec {
		t.Error("assignment not honored")
	}
	if p, _ := h.Begin(kb, raja.NewRange(0, 1)); p.Policy != raja.OmpParallelForExec {
		t.Error("fallback not honored")
	}
}

func TestNumMaterialsAnnotated(t *testing.T) {
	ann := caliper.New()
	clk := platform.NewSimClock(platform.SandyBridgeNode(), 0, 0)
	ctx := raja.NewSimContext(clk, raja.Params{})
	if _, err := New(app.Config{Ctx: ctx, Ann: ann, Problem: "jet", Size: 32}); err != nil {
		t.Fatal(err)
	}
	if got := ann.GetOr("num_materials", -1); got != 3 {
		t.Errorf("num_materials annotation = %g, want 3", got)
	}
}

func TestDescriptor(t *testing.T) {
	d := Descriptor()
	if d.Name != "ARES" || d.Short != "A" || len(d.Problems) != 3 {
		t.Errorf("descriptor wrong: %+v", d)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (float64, int) {
		s := newSim(t, "hotspot")
		for i := 0; i < 4; i++ {
			s.Step()
		}
		return s.Time(), s.MixedCellCount()
	}
	t1, m1 := run()
	t2, m2 := run()
	if t1 != t2 || m1 != m2 {
		t.Errorf("runs diverged: (%g,%d) vs (%g,%d)", t1, m1, t2, m2)
	}
}
