// Package ares is the ARES proxy: an ALE-style multi-physics
// hydrodynamics application with adaptive mesh refinement and a mixed
// material capability, standing in for the production code the paper
// tunes.
//
// The proxy reproduces the workload characteristics the paper attributes
// to ARES:
//
//   - a Lagrange-plus-remap update split over many kernels;
//   - a dynamic mixed-material capability: per-material volume fractions
//     advect with the flow, and the per-material mixed-cell lists (RAJA
//     ListSegments) grow as materials mix together during the run;
//   - additional physics packages (radiation diffusion and conduction)
//     enabled by the Jet and Hotspot decks, changing the kernel mix per
//     input problem;
//   - developer-assigned static execution policies per kernel (the
//     paper's ARES default is hand-chosen serial/OpenMP per kernel, not
//     OpenMP everywhere); and
//   - a large unported remainder: only one physics package of the real
//     code uses RAJA, so end-to-end speedups are diluted (paper Fig. 11
//     reports 1.15x). The proxy models the unported remainder as a fixed
//     per-step cost outside Apollo's control.
package ares

import (
	"fmt"
	"math"

	"apollo/internal/amr"
	"apollo/internal/app"
	"apollo/internal/caliper"
	"apollo/internal/features"
	"apollo/internal/hydro"
	"apollo/internal/instmix"
	"apollo/internal/mesh"
	"apollo/internal/raja"
)

// MaxMaterials is the proxy's material capacity.
const MaxMaterials = 4

// Field names.
const (
	FRho  = "density"
	FMu   = "xmom"
	FMv   = "ymom"
	FE    = "energy"
	FP    = "pressure"
	FQ    = "artificial_q"
	FWs   = "wavespeed"
	FRhoN = "density_new"
	FMuN  = "xmom_new"
	FMvN  = "ymom_new"
	FEN   = "energy_new"
)

// vfField names the volume-fraction field of material m.
func vfField(m int) string { return fmt.Sprintf("vof_%d", m) }

func allFields() []string {
	fs := []string{FRho, FMu, FMv, FE, FP, FQ, FWs, FRhoN, FMuN, FMvN, FEN}
	for m := 0; m < MaxMaterials; m++ {
		fs = append(fs, vfField(m), vfField(m)+"_new")
	}
	return fs
}

var conservedFields = []string{FRho, FMu, FMv, FE}

// Kernel launch sites.
var (
	kEOS = raja.NewKernel("ares::eos", instmix.NewMix().
		With(instmix.Movsd, 6).With(instmix.Mulpd, 4).With(instmix.Add, 3).
		With(instmix.Divsd, 1).With(instmix.Sqrtsd, 1).With(instmix.Mov, 4).
		With(instmix.Maxsd, 2).With(instmix.Cmp, 1))
	kCalcDt = raja.NewKernel("ares::calc_dt", instmix.NewMix().
		With(instmix.Movsd, 5).With(instmix.Divsd, 2).With(instmix.Sqrtsd, 1).
		With(instmix.Add, 2).With(instmix.Maxsd, 2).With(instmix.Mov, 3))
	kLagrangeQ = raja.NewKernel("ares::lagrange_q", instmix.NewMix().
			With(instmix.Movsd, 8).With(instmix.Mulpd, 6).With(instmix.Add, 5).
			With(instmix.Sub, 3).With(instmix.Maxsd, 2).With(instmix.Cmp, 2).
			With(instmix.Mov, 5).With(instmix.Jb, 1))
	kLagrangeAccel = raja.NewKernel("ares::lagrange_accel", instmix.NewMix().
			With(instmix.Movsd, 6).With(instmix.Mulpd, 4).With(instmix.Add, 4).
			With(instmix.Mov, 4).With(instmix.Sub, 1))
	kRemapRhoX = raja.NewKernel("ares::remap_rho_x", remapMix())
	kRemapMomX = raja.NewKernel("ares::remap_mom_x", remapMix().With(instmix.Mulpd, 4))
	kRemapEneX = raja.NewKernel("ares::remap_energy_x", remapMix())
	kRemapRhoY = raja.NewKernel("ares::remap_rho_y", remapMix())
	kRemapMomY = raja.NewKernel("ares::remap_mom_y", remapMix().With(instmix.Mulpd, 4))
	kRemapEneY = raja.NewKernel("ares::remap_energy_y", remapMix())
	kResetX    = raja.NewKernel("ares::remap_reset_x", resetMix())
	kResetY    = raja.NewKernel("ares::remap_reset_y", resetMix())
	kAdvecVofX = raja.NewKernel("ares::advec_vof_x", vofMix())
	kAdvecVofY = raja.NewKernel("ares::advec_vof_y", vofMix())
	kVofNorm   = raja.NewKernel("ares::vof_normalize", instmix.NewMix().
			With(instmix.Movsd, 5).With(instmix.Add, 4).With(instmix.Divsd, 1).
			With(instmix.Mov, 3).With(instmix.Cmp, 1).With(instmix.Jb, 1))
	kMixRelax = raja.NewKernel("ares::mix_pressure_relax", instmix.NewMix().
			With(instmix.Movsd, 7).With(instmix.Mulpd, 5).With(instmix.Add, 4).
			With(instmix.Divsd, 2).With(instmix.Mov, 4).With(instmix.Cmp, 2).
			With(instmix.Jb, 1))
	kMatEOS = raja.NewKernel("ares::mat_eos", instmix.NewMix().
		With(instmix.Movsd, 6).With(instmix.Mulpd, 4).With(instmix.Add, 3).
		With(instmix.Divsd, 1).With(instmix.Sqrtsd, 1).With(instmix.Mov, 3))
	kMatUpdate = raja.NewKernel("ares::mat_update", instmix.NewMix().
			With(instmix.Movsd, 3).With(instmix.Add, 2).With(instmix.Mov, 3).
			With(instmix.Cmp, 1))
	kRadDiffusion = raja.NewKernel("ares::rad_diffusion", instmix.NewMix().
			With(instmix.Movsd, 10).With(instmix.Mulpd, 6).With(instmix.Add, 8).
			With(instmix.Sub, 2).With(instmix.Mov, 5))
	kConduction = raja.NewKernel("ares::conduction", instmix.NewMix().
			With(instmix.Movsd, 10).With(instmix.Mulpd, 5).With(instmix.Add, 7).
			With(instmix.Sub, 2).With(instmix.Mov, 5))
	kHaloX = raja.NewKernel("ares::update_halo_x", haloMix())
	kHaloY = raja.NewKernel("ares::update_halo_y", haloMix())

	// kUnported models the bulk of the production code that has not
	// been ported to RAJA; Apollo cannot tune it.
	kUnported = raja.NewKernel("ares::unported_physics", instmix.NewMix().
			With(instmix.Movsd, 12).With(instmix.Mulpd, 8).With(instmix.Add, 8).
			With(instmix.Divsd, 2).With(instmix.Mov, 8))
)

func remapMix() *instmix.Mix {
	return instmix.NewMix().
		With(instmix.Movsd, 14).With(instmix.Mulpd, 16).With(instmix.Add, 12).
		With(instmix.Sub, 6).With(instmix.Divsd, 3).With(instmix.Sqrtsd, 2).
		With(instmix.Maxsd, 3).With(instmix.Mov, 8).With(instmix.Cmp, 2).
		With(instmix.Lea, 2)
}

func resetMix() *instmix.Mix {
	return instmix.NewMix().
		With(instmix.Movsd, 8).With(instmix.Mov, 8).With(instmix.Lea, 2)
}

func vofMix() *instmix.Mix {
	return instmix.NewMix().
		With(instmix.Movsd, 8).With(instmix.Mulpd, 4).With(instmix.Add, 4).
		With(instmix.Sub, 2).With(instmix.Cmp, 2).With(instmix.Jb, 2).
		With(instmix.Mov, 5)
}

func haloMix() *instmix.Mix {
	return instmix.NewMix().
		With(instmix.Movsd, 2).With(instmix.Mov, 4).With(instmix.Cmp, 2).
		With(instmix.Jb, 1).With(instmix.Lea, 1)
}

// DefaultAssignment returns the developer-chosen static policy per kernel
// — the configuration the paper's ARES speedups are measured against.
// Large interior kernels were assigned OpenMP; list-driven material
// kernels, tiny per-material loops, and halo strips were assigned serial.
func DefaultAssignment() map[string]raja.Params {
	omp := raja.Params{Policy: raja.OmpParallelForExec}
	seq := raja.Params{Policy: raja.SeqExec}
	return map[string]raja.Params{
		kEOS.Name: omp, kCalcDt.Name: omp,
		kLagrangeQ.Name: omp, kLagrangeAccel.Name: omp,
		kRemapRhoX.Name: omp, kRemapMomX.Name: omp, kRemapEneX.Name: omp,
		kRemapRhoY.Name: omp, kRemapMomY.Name: omp, kRemapEneY.Name: omp,
		kResetX.Name: omp, kResetY.Name: omp,
		kAdvecVofX.Name: omp, kAdvecVofY.Name: omp, kVofNorm.Name: omp,
		kMixRelax.Name: seq, kMatEOS.Name: seq, kMatUpdate.Name: seq,
		kRadDiffusion.Name: omp, kConduction.Name: omp,
		kHaloX.Name: seq, kHaloY.Name: seq,
	}
}

// StaticHooks applies a fixed per-kernel parameter assignment, standing in
// for the hand-tuned policy selections of the production code.
type StaticHooks struct {
	Assignment map[string]raja.Params
	Fallback   raja.Params
}

// Begin returns the kernel's assigned parameters.
func (h *StaticHooks) Begin(k *raja.Kernel, iset *raja.IndexSet) (raja.Params, bool) {
	if p, ok := h.Assignment[k.Name]; ok {
		return p, true
	}
	return h.Fallback, true
}

// End is a no-op.
func (h *StaticHooks) End(k *raja.Kernel, iset *raja.IndexSet, p raja.Params, elapsedNS float64) {
}

// Sim is an ARES run.
type Sim struct {
	cfg   app.Config
	deck  hydro.Deck
	h     *amr.Hierarchy
	cycle int
	time  float64

	numMat      int
	extraPhys   bool // radiation + conduction packages (jet, hotspot)
	regridEvery int

	// unportedCtx executes the unported remainder outside Apollo's
	// hooks with a fixed policy.
	unportedCtx *raja.Context
}

// Descriptor returns the harness descriptor for ARES.
func Descriptor() app.Descriptor {
	return app.Descriptor{
		Name:          "ARES",
		Short:         "A",
		Problems:      []string{"sedov", "jet", "hotspot"},
		TrainSizes:    []int{32, 48, 64},
		Steps:         10,
		DefaultParams: raja.Params{Policy: raja.OmpParallelForExec},
		NewDefaultHooks: func() raja.Hooks {
			return &StaticHooks{
				Assignment: DefaultAssignment(),
				Fallback:   raja.Params{Policy: raja.OmpParallelForExec},
			}
		},
		New: func(cfg app.Config) (app.Sim, error) { return New(cfg) },
	}
}

// New builds an ARES run.
func New(cfg app.Config) (*Sim, error) {
	var deck hydro.Deck
	switch cfg.Problem {
	case "sedov":
		deck = hydro.SedovMix() // full mixed-material Sedov, as in the paper
	case "jet":
		deck = hydro.Jet()
	case "hotspot":
		deck = hydro.Hotspot()
	default:
		return nil, fmt.Errorf("ares: unknown problem %q", cfg.Problem)
	}
	if cfg.Size < 16 {
		return nil, fmt.Errorf("ares: size %d too small (min 16)", cfg.Size)
	}
	if cfg.Ann == nil {
		cfg.Ann = caliper.New()
	}
	if cfg.Ranks < 1 {
		cfg.Ranks = 1
	}
	base := 32
	if cfg.Size < base {
		base = cfg.Size
	}
	if cfg.Ranks > 1 {
		// Distributed runs decompose the base grid so each rank owns
		// roughly one base block; strong scaling shrinks the blocks.
		side := int(math.Ceil(math.Sqrt(float64(cfg.Ranks))))
		base = cfg.Size / side
		if base < 8 {
			base = 8
		}
	}
	maxBlock := 0
	if cfg.Ranks > 1 {
		// Cap patch sizes so refined work stays divisible across ranks
		// (SAMRAI's largest-patch-size constraint).
		maxBlock = base * 2
	}
	h := amr.New(amr.Config{
		Domain:    mesh.NewBox(0, 0, cfg.Size, cfg.Size),
		MaxLevels: 2,
		Ratio:     2,
		Ghost:     2,
		TileSize:  4,
		TagBuffer: 1,
		BaseBlock: base,
		MaxBlock:  maxBlock,
		Fields:    allFields(),
	})
	s := &Sim{
		cfg:         cfg,
		deck:        deck,
		h:           h,
		numMat:      deck.NumMaterials,
		extraPhys:   cfg.Problem == "jet" || cfg.Problem == "hotspot",
		regridEvery: 4,
	}
	s.unportedCtx = &raja.Context{
		Team:    cfg.Ctx.Team,
		Sim:     cfg.Ctx.Sim,
		Default: raja.Params{Policy: raja.OmpParallelForExec},
	}
	s.cfg.Ann.SetString(features.ProblemName, deck.Name)
	s.cfg.Ann.Set(features.ProblemSize, float64(cfg.Size))
	s.cfg.Ann.Set(features.Timestep, 0)
	s.cfg.Ann.Set("num_materials", float64(s.numMat))

	s.applyDeck(0)
	s.regrid()
	s.applyDeck(1)
	return s, nil
}

// applyDeck initializes conserved fields and material volume fractions.
func (s *Sim) applyDeck(l int) {
	if l >= s.h.NumLevels() {
		return
	}
	domain := s.h.LevelDomain(l)
	nx, ny := float64(domain.NX()), float64(domain.NY())
	for _, p := range s.h.Level(l) {
		rho, mu, mv, e := p.Field(FRho), p.Field(FMu), p.Field(FMv), p.Field(FE)
		for j := p.Box.Y0; j < p.Box.Y1; j++ {
			for i := p.Box.X0; i < p.Box.X1; i++ {
				x := (float64(i) + 0.5) / nx
				y := (float64(j) + 0.5) / ny
				r, u, v, pr, mat := s.deck.Init(x, y)
				st := hydro.Conserved(r, u, v, pr)
				rho.Set(i, j, st.Rho)
				mu.Set(i, j, st.Mu)
				mv.Set(i, j, st.Mv)
				e.Set(i, j, st.E)
				for m := 0; m < MaxMaterials; m++ {
					vf := 0.0
					if m == mat {
						vf = 1.0
					}
					p.Field(vfField(m)).Set(i, j, vf)
				}
			}
		}
	}
}

// Hierarchy exposes the AMR hierarchy.
func (s *Sim) Hierarchy() *amr.Hierarchy { return s.h }

// Cycle returns completed steps.
func (s *Sim) Cycle() int { return s.cycle }

// Time returns simulated time.
func (s *Sim) Time() float64 { return s.time }

// NumMaterials returns the deck's material count.
func (s *Sim) NumMaterials() int { return s.numMat }

func (s *Sim) regrid() {
	s.h.Regrid(func(p *amr.Patch, tag func(i, j int)) {
		rho, e := p.Field(FRho), p.Field(FE)
		relGrad := func(f *mesh.Field, i, j int) float64 {
			c := f.At(i, j)
			if c <= 0 {
				return 0
			}
			return (math.Abs(f.At(i+1, j)-f.At(i-1, j)) +
				math.Abs(f.At(i, j+1)-f.At(i, j-1))) / c
		}
		for j := p.Box.Y0 + 1; j < p.Box.Y1-1; j++ {
			for i := p.Box.X0 + 1; i < p.Box.X1-1; i++ {
				if relGrad(rho, i, j) > 0.2 || relGrad(e, i, j) > 0.4 {
					tag(i, j)
				}
			}
		}
	})
	for idx, p := range s.h.Patches() {
		p.Rank = idx % s.cfg.Ranks
	}
}

func (s *Sim) launch(p *amr.Patch, k *raja.Kernel, iset *raja.IndexSet, body func(i int)) {
	s.cfg.Ann.Set(features.PatchID, float64(p.ID))
	s.cfg.Ann.Set("rank", float64(p.Rank))
	raja.ForAll(s.cfg.Ctx, k, iset, body)
}

func interiorSet(p *amr.Patch) *raja.IndexSet {
	return raja.NewRange(0, p.Box.Count())
}

// Step advances one timestep: Lagrange phase, remap phase, material
// phase, optional extra physics, and the unported remainder.
func (s *Sim) Step() {
	if s.cycle > 0 && s.cycle%s.regridEvery == 0 {
		s.regrid()
	}
	s.cfg.Ann.Set(features.Timestep, float64(s.cycle))

	dt := s.computeDt()
	for l := 0; l < s.h.NumLevels(); l++ {
		s.lagrangePhase(l, dt)
		s.remapPhase(l, dt)
		s.materialPhase(l, dt)
		if s.extraPhys {
			s.extraPhysics(l, dt)
		}
	}
	s.h.Restrict(1, conservedFields)
	s.unportedPhase()
	s.time += dt
	s.cycle++
}

func (s *Sim) computeDt() float64 {
	maxSpeed := 0.0
	for l := 0; l < s.h.NumLevels(); l++ {
		for _, p := range s.h.Level(l) {
			s.eos(p)
			s.calcDt(p)
			_, hi := p.Field(FWs).MinMaxInterior()
			if hi > maxSpeed {
				maxSpeed = hi
			}
		}
	}
	dxFine := 1.0 / float64(s.h.LevelDomain(s.h.NumLevels()-1).NX())
	return hydro.Dt(maxSpeed, dxFine)
}

// exchange fills ghosts and applies physical boundaries through the
// update_halo strip kernels (width 2, matching the AMR ghost width).
func (s *Sim) exchange(l int) {
	s.h.FillGhosts(l, conservedFields, nil)
	domain := s.h.LevelDomain(l)
	for _, p := range s.h.Level(l) {
		s.updateHalo(p, kHaloX, 0, domain)
		s.updateHalo(p, kHaloY, 1, domain)
	}
}

// updateHalo reflects every conserved field at the physical boundary in
// one direction; the normal momentum flips sign.
func (s *Sim) updateHalo(p *amr.Patch, k *raja.Kernel, dir int, domain mesh.Box) {
	b := p.Box
	var strip int
	var lo, hi bool
	if dir == 0 {
		strip = 2 * b.NY()
		lo, hi = b.X0 == domain.X0, b.X1 == domain.X1
	} else {
		strip = 2 * b.NX()
		lo, hi = b.Y0 == domain.Y0, b.Y1 == domain.Y1
	}
	iset := raja.NewIndexSet()
	if lo {
		iset.Push(raja.RangeSegment{Begin: 0, End: strip})
	}
	if hi {
		iset.Push(raja.RangeSegment{Begin: strip, End: 2 * strip})
	}
	if iset.Len() == 0 {
		return
	}
	fields := make([]*mesh.Field, len(conservedFields))
	signs := make([]float64, len(conservedFields))
	for fi, name := range conservedFields {
		fields[fi] = p.Field(name)
		signs[fi] = 1
		if (name == FMu && dir == 0) || (name == FMv && dir == 1) {
			signs[fi] = -1
		}
	}
	s.launch(p, k, iset, func(kk int) {
		side := kk / strip
		r := kk % strip
		layer := r / (strip / 2)
		pos := r % (strip / 2)
		for fi, f := range fields {
			if dir == 0 {
				j := b.Y0 + pos
				if side == 0 {
					f.Set(b.X0-1-layer, j, signs[fi]*f.At(b.X0+layer, j))
				} else {
					f.Set(b.X1+layer, j, signs[fi]*f.At(b.X1-1-layer, j))
				}
			} else {
				i := b.X0 + pos
				if side == 0 {
					f.Set(i, b.Y0-1-layer, signs[fi]*f.At(i, b.Y0+layer))
				} else {
					f.Set(i, b.Y1+layer, signs[fi]*f.At(i, b.Y1-1-layer))
				}
			}
		}
	})
}

func state(rho, mu, mv, e *mesh.Field, i, j int) hydro.State {
	return hydro.State{Rho: rho.At(i, j), Mu: mu.At(i, j), Mv: mv.At(i, j), E: e.At(i, j)}
}

func (s *Sim) eos(p *amr.Patch) {
	rho, mu, mv, e, pr := p.Field(FRho), p.Field(FMu), p.Field(FMv), p.Field(FE), p.Field(FP)
	s.launch(p, kEOS, interiorSet(p), func(k int) {
		i, j := rho.CellOf(k)
		pr.Set(i, j, hydro.Pressure(state(rho, mu, mv, e, i, j)))
	})
}

func (s *Sim) calcDt(p *amr.Patch) {
	rho, mu, mv, e, ws := p.Field(FRho), p.Field(FMu), p.Field(FMv), p.Field(FE), p.Field(FWs)
	s.launch(p, kCalcDt, interiorSet(p), func(k int) {
		i, j := rho.CellOf(k)
		st := state(rho, mu, mv, e, i, j)
		ws.Set(i, j, math.Max(hydro.WaveSpeedX(st), hydro.WaveSpeedY(st)))
	})
}

// lagrangePhase computes artificial viscosity and applies it as a
// momentum damping source.
func (s *Sim) lagrangePhase(l int, dt float64) {
	s.exchange(l)
	for _, p := range s.h.Level(l) {
		rho, mu, mv, q := p.Field(FRho), p.Field(FMu), p.Field(FMv), p.Field(FQ)
		s.launch(p, kLagrangeQ, interiorSet(p), func(k int) {
			i, j := rho.CellOf(k)
			r := math.Max(rho.At(i, j), hydro.RhoFloor)
			div := (mu.At(i+1, j)-mu.At(i-1, j))/(2*r) + (mv.At(i, j+1)-mv.At(i, j-1))/(2*r)
			if div < 0 {
				q.Set(i, j, 0.1*r*div*div)
			} else {
				q.Set(i, j, 0)
			}
		})
		s.launch(p, kLagrangeAccel, interiorSet(p), func(k int) {
			i, j := mu.CellOf(k)
			damp := 1 / (1 + dt*q.At(i, j))
			mu.Set(i, j, mu.At(i, j)*damp)
			mv.Set(i, j, mv.At(i, j)*damp)
		})
	}
}

// remapPhase performs the dimension-split conservative update plus
// volume-fraction advection.
func (s *Sim) remapPhase(l int, dt float64) {
	dx := 1.0 / float64(s.h.LevelDomain(l).NX())
	lambda := dt / dx

	s.exchange(l)
	for _, p := range s.h.Level(l) {
		s.sweep(p, lambda, 0)
		s.advecVof(p, lambda, 0)
		s.reset(p, kResetX)
	}
	s.exchange(l)
	for _, p := range s.h.Level(l) {
		s.sweep(p, lambda, 1)
		s.advecVof(p, lambda, 1)
		s.reset(p, kResetY)
	}
}

// sweep advances conserved components in direction dir (0 = x, 1 = y).
func (s *Sim) sweep(p *amr.Patch, lambda float64, dir int) {
	rho, mu, mv, e := p.Field(FRho), p.Field(FMu), p.Field(FMv), p.Field(FE)
	rhoN, muN, mvN, eN := p.Field(FRhoN), p.Field(FMuN), p.Field(FMvN), p.Field(FEN)
	var kRho, kMom, kEne *raja.Kernel
	var flux func(i, j int) (hydro.State, hydro.State)
	if dir == 0 {
		kRho, kMom, kEne = kRemapRhoX, kRemapMomX, kRemapEneX
		flux = func(i, j int) (hydro.State, hydro.State) {
			lo := hydro.RusanovX(state(rho, mu, mv, e, i-1, j), state(rho, mu, mv, e, i, j))
			hi := hydro.RusanovX(state(rho, mu, mv, e, i, j), state(rho, mu, mv, e, i+1, j))
			return lo, hi
		}
	} else {
		kRho, kMom, kEne = kRemapRhoY, kRemapMomY, kRemapEneY
		flux = func(i, j int) (hydro.State, hydro.State) {
			lo := hydro.RusanovY(state(rho, mu, mv, e, i, j-1), state(rho, mu, mv, e, i, j))
			hi := hydro.RusanovY(state(rho, mu, mv, e, i, j), state(rho, mu, mv, e, i, j+1))
			return lo, hi
		}
	}
	s.launch(p, kRho, interiorSet(p), func(k int) {
		i, j := rho.CellOf(k)
		lo, hi := flux(i, j)
		rhoN.Set(i, j, math.Max(rho.At(i, j)-lambda*(hi.Rho-lo.Rho), hydro.RhoFloor))
	})
	s.launch(p, kMom, interiorSet(p), func(k int) {
		i, j := rho.CellOf(k)
		lo, hi := flux(i, j)
		muN.Set(i, j, mu.At(i, j)-lambda*(hi.Mu-lo.Mu))
		mvN.Set(i, j, mv.At(i, j)-lambda*(hi.Mv-lo.Mv))
	})
	s.launch(p, kEne, interiorSet(p), func(k int) {
		i, j := rho.CellOf(k)
		lo, hi := flux(i, j)
		eN.Set(i, j, math.Max(e.At(i, j)-lambda*(hi.E-lo.E), hydro.PFloor))
	})
}

// advecVof advects every material's volume fraction with donor-cell
// upwinding on the cell velocity, writing the *_new vof fields.
func (s *Sim) advecVof(p *amr.Patch, lambda float64, dir int) {
	rho, mu, mv := p.Field(FRho), p.Field(FMu), p.Field(FMv)
	k := kAdvecVofX
	if dir == 1 {
		k = kAdvecVofY
	}
	vfs := make([]*mesh.Field, s.numMat)
	vfsN := make([]*mesh.Field, s.numMat)
	for m := 0; m < s.numMat; m++ {
		vfs[m] = p.Field(vfField(m))
		vfsN[m] = p.Field(vfField(m) + "_new")
	}
	s.launch(p, k, interiorSet(p), func(kk int) {
		i, j := rho.CellOf(kk)
		r := math.Max(rho.At(i, j), hydro.RhoFloor)
		var vel float64
		if dir == 0 {
			vel = mu.At(i, j) / r
		} else {
			vel = mv.At(i, j) / r
		}
		for m := range vfs {
			var up float64
			if dir == 0 {
				if vel >= 0 {
					up = vfs[m].At(i, j) - vfs[m].At(i-1, j)
				} else {
					up = vfs[m].At(i+1, j) - vfs[m].At(i, j)
				}
			} else {
				if vel >= 0 {
					up = vfs[m].At(i, j) - vfs[m].At(i, j-1)
				} else {
					up = vfs[m].At(i, j+1) - vfs[m].At(i, j)
				}
			}
			nv := vfs[m].At(i, j) - lambda*vel*up
			vfsN[m].Set(i, j, math.Min(math.Max(nv, 0), 1))
		}
	})
}

// reset copies the *_new fields back, including volume fractions, and
// renormalizes the fractions to sum to one.
func (s *Sim) reset(p *amr.Patch, k *raja.Kernel) {
	rho, mu, mv, e := p.Field(FRho), p.Field(FMu), p.Field(FMv), p.Field(FE)
	rhoN, muN, mvN, eN := p.Field(FRhoN), p.Field(FMuN), p.Field(FMvN), p.Field(FEN)
	vfs := make([]*mesh.Field, s.numMat)
	vfsN := make([]*mesh.Field, s.numMat)
	for m := 0; m < s.numMat; m++ {
		vfs[m] = p.Field(vfField(m))
		vfsN[m] = p.Field(vfField(m) + "_new")
	}
	s.launch(p, k, interiorSet(p), func(kk int) {
		i, j := rho.CellOf(kk)
		rho.Set(i, j, rhoN.At(i, j))
		mu.Set(i, j, muN.At(i, j))
		mv.Set(i, j, mvN.At(i, j))
		e.Set(i, j, eN.At(i, j))
		for m := range vfs {
			vfs[m].Set(i, j, vfsN[m].At(i, j))
		}
	})
	s.launch(p, kVofNorm, interiorSet(p), func(kk int) {
		i, j := rho.CellOf(kk)
		var sum float64
		for m := range vfs {
			sum += vfs[m].At(i, j)
		}
		if sum > 1e-12 {
			for m := range vfs {
				vfs[m].Set(i, j, vfs[m].At(i, j)/sum)
			}
		}
	})
}

// materialPhase builds the per-material mixed-cell lists and runs the
// material kernels over them. The lists are RAJA ListSegments whose
// lengths change dynamically as materials mix — the paper's key ARES
// input dependence.
func (s *Sim) materialPhase(l int, dt float64) {
	for _, p := range s.h.Level(l) {
		pr := p.Field(FP)
		for m := 0; m < s.numMat; m++ {
			vf := p.Field(vfField(m))
			mixed, dominant := s.materialLists(p, vf)
			if len(mixed) > 0 {
				iset := raja.NewList(mixed)
				s.launch(p, kMixRelax, iset, func(k int) {
					i, j := pr.CellOf(k)
					// Relax pressure toward the volume-weighted value.
					w := vf.At(i, j)
					pv := pr.At(i, j)
					pr.Set(i, j, pv*(1-0.05*w)+0.05*w*pv)
				})
			}
			if len(dominant) > 0 {
				iset := raja.NewList(dominant)
				s.launch(p, kMatEOS, iset, func(k int) {
					i, j := pr.CellOf(k)
					pr.Set(i, j, math.Max(pr.At(i, j), hydro.PFloor))
				})
			}
		}
		// A tiny kernel iterating over the materials themselves.
		counts := make([]float64, s.numMat)
		s.launch(p, kMatUpdate, raja.NewRange(0, s.numMat), func(m int) {
			vf := p.Field(vfField(m))
			counts[m] = vf.SumInterior()
		})
	}
}

// materialLists returns the flat interior indices of mixed cells
// (0 < vf < 1) and dominant cells (vf >= 0.5) of one material.
func (s *Sim) materialLists(p *amr.Patch, vf *mesh.Field) (mixed, dominant []int) {
	n := p.Box.Count()
	for k := 0; k < n; k++ {
		i, j := vf.CellOf(k)
		v := vf.At(i, j)
		if v > 0.01 && v < 0.99 {
			mixed = append(mixed, k)
		}
		if v >= 0.5 {
			dominant = append(dominant, k)
		}
	}
	return
}

// MixedCellCount returns the current number of mixed cells across the
// hierarchy — a measurable proxy for how far materials have mixed.
func (s *Sim) MixedCellCount() int {
	total := 0
	for _, p := range s.h.Patches() {
		for m := 0; m < s.numMat; m++ {
			mixed, _ := s.materialLists(p, p.Field(vfField(m)))
			total += len(mixed)
		}
	}
	return total
}

// extraPhysics runs the radiation-diffusion and conduction packages the
// Jet and Hotspot decks enable: explicit 5-point diffusion of energy.
func (s *Sim) extraPhysics(l int, dt float64) {
	s.exchange(l)
	const kappa = 0.02
	for _, p := range s.h.Level(l) {
		e, eN := p.Field(FE), p.Field(FEN)
		s.launch(p, kRadDiffusion, interiorSet(p), func(k int) {
			i, j := e.CellOf(k)
			lap := e.At(i+1, j) + e.At(i-1, j) + e.At(i, j+1) + e.At(i, j-1) - 4*e.At(i, j)
			eN.Set(i, j, e.At(i, j)+kappa*lap*0.25)
		})
		s.launch(p, kConduction, interiorSet(p), func(k int) {
			i, j := e.CellOf(k)
			e.Set(i, j, math.Max(eN.At(i, j), hydro.PFloor))
		})
	}
}

// unportedPhase models the multi-million-line remainder of the production
// code that does not use RAJA: a fixed-cost parallel workload per step
// outside Apollo's hooks, sized against the level-0 domain.
func (s *Sim) unportedPhase() {
	n := s.h.LevelDomain(0).Count() * 3
	raja.ForAll(s.unportedCtx, kUnported, raja.NewRange(0, n), func(int) {})
}

// Kernels lists the package's kernel launch sites.
func Kernels() []*raja.Kernel {
	return []*raja.Kernel{
		kEOS, kCalcDt, kLagrangeQ, kLagrangeAccel,
		kRemapRhoX, kRemapMomX, kRemapEneX,
		kRemapRhoY, kRemapMomY, kRemapEneY,
		kResetX, kResetY, kAdvecVofX, kAdvecVofY, kVofNorm,
		kMixRelax, kMatEOS, kMatUpdate,
		kRadDiffusion, kConduction, kHaloX, kHaloY,
	}
}
