package telemetry

import (
	"sync"
	"testing"

	"apollo/internal/caliper"
	"apollo/internal/core"
	"apollo/internal/dataset"
	"apollo/internal/features"
	"apollo/internal/raja"
)

func testSchema() *features.Schema {
	return features.NewSchema(features.NumIndices, features.Timestep)
}

func record(r *Recorder, n int, elapsed float64) {
	k := raja.NewKernel("telemetry_test", nil)
	iset := raja.NewRange(0, n)
	r.Record(k, iset, raja.Params{Policy: raja.OmpParallelForExec, Chunk: 64}, elapsed)
}

func TestRecorderCapturesSampleRows(t *testing.T) {
	schema := testSchema()
	ann := caliper.New()
	ann.Set(features.Timestep, 7)
	r := NewRecorder(schema, ann, Options{})

	record(r, 128, 1234)
	if r.Recorded() != 1 || r.Seen() != 1 {
		t.Fatalf("recorded=%d seen=%d, want 1/1", r.Recorded(), r.Seen())
	}
	frame := r.Drain(0)
	if frame == nil || frame.Len() != 1 {
		t.Fatalf("drained frame = %v", frame)
	}
	if got := frame.At(0, features.NumIndices); got != 128 {
		t.Errorf("num_indices = %v, want 128", got)
	}
	if got := frame.At(0, features.Timestep); got != 7 {
		t.Errorf("timestep = %v, want 7", got)
	}
	if got := frame.At(0, core.ColPolicy); got != float64(raja.OmpParallelForExec) {
		t.Errorf("policy = %v", got)
	}
	if got := frame.At(0, core.ColChunk); got != 64 {
		t.Errorf("chunk = %v", got)
	}
	if got := frame.At(0, core.ColTimeNS); got != 1234 {
		t.Errorf("time_ns = %v", got)
	}
	if r.Drain(0) != nil {
		t.Error("second drain returned rows from an empty ring")
	}
}

func TestRecorderSamplesOneInEvery(t *testing.T) {
	r := NewRecorder(testSchema(), nil, Options{SampleEvery: 8})
	for i := 0; i < 64; i++ {
		record(r, 10, 1)
	}
	if r.Recorded() != 8 {
		t.Errorf("recorded = %d, want 8", r.Recorded())
	}
	if frame := r.Drain(0); frame == nil || frame.Len() != 8 {
		t.Errorf("drained %v", frame)
	}
}

func TestRecorderDropsWhenFull(t *testing.T) {
	r := NewRecorder(testSchema(), nil, Options{Capacity: 4})
	for i := 0; i < 10; i++ {
		record(r, i, float64(i))
	}
	if r.Recorded() != 4 {
		t.Errorf("recorded = %d, want 4 (ring capacity)", r.Recorded())
	}
	if r.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", r.Dropped())
	}
	// Draining frees capacity for new samples.
	if frame := r.Drain(0); frame.Len() != 4 {
		t.Fatalf("drained %d rows", frame.Len())
	}
	record(r, 99, 99)
	if frame := r.Drain(0); frame == nil || frame.Len() != 1 || frame.At(0, features.NumIndices) != 99 {
		t.Errorf("post-drain record lost: %v", frame)
	}
}

// TestRecorderConcurrentProducersAndConsumer exercises the ring under
// the race detector: many producers, one draining consumer, no sample
// corrupted (every drained row must be internally consistent).
func TestRecorderConcurrentProducersAndConsumer(t *testing.T) {
	schema := testSchema()
	r := NewRecorder(schema, nil, Options{Capacity: 64})
	const producers, perProducer = 8, 500

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			k := raja.NewKernel("race", nil)
			for i := 0; i < perProducer; i++ {
				n := 1 + i%7
				// elapsed = 1000*num_indices: lets the consumer check
				// row integrity.
				r.Record(k, raja.NewRange(0, n), raja.Params{}, float64(n)*1000)
			}
		}()
	}
	doneProducing := make(chan struct{})
	done := make(chan struct{})
	var drained int
	check := func(f *dataset.Frame) {
		for i := 0; i < f.Len(); i++ {
			n := f.At(i, features.NumIndices)
			if got := f.At(i, core.ColTimeNS); got != n*1000 {
				t.Errorf("torn row: num_indices=%v time_ns=%v", n, got)
			}
		}
		drained += f.Len()
	}
	go func() {
		defer close(done)
		for {
			frame := r.Drain(0)
			if frame != nil {
				check(frame)
				continue
			}
			select {
			case <-doneProducing:
				// One final sweep after producers stop.
				if f := r.Drain(0); f != nil {
					check(f)
				}
				return
			default:
			}
		}
	}()
	wg.Wait()
	close(doneProducing)
	<-done

	total := r.Recorded()
	if uint64(drained) != total {
		t.Errorf("drained %d rows, recorder says %d", drained, total)
	}
	if r.Seen() != producers*perProducer {
		t.Errorf("seen = %d, want %d", r.Seen(), producers*perProducer)
	}
}

func TestBatchRoundTripAndValidation(t *testing.T) {
	r := NewRecorder(testSchema(), nil, Options{})
	record(r, 5, 50)
	record(r, 6, 60)
	frame := r.Drain(0)
	b := NewBatch("app/policy", frame)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	back := b.Frame()
	if back.Len() != 2 || back.At(1, features.NumIndices) != 6 {
		t.Errorf("round trip lost rows: %v", back)
	}

	b.SchemaHash = "0000000000000000"
	if err := b.Validate(); err == nil {
		t.Error("bad schema hash accepted")
	}
	b.SchemaHash = ColumnsHash(b.Columns)
	b.Rows = append(b.Rows, []float64{1})
	if err := b.Validate(); err == nil {
		t.Error("short row accepted")
	}
}
