// Package telemetry is the capture side of Apollo's closed training
// loop. A deployed tuner only evaluates its model; it never learns
// whether the chosen variant was actually the fastest. This package
// records a sampled stream of (feature vector, chosen parameters,
// elapsed time) tuples from the launch hot path, buffers them in a
// bounded lock-free ring, and defines the wire batch the uploader ships
// to the model service — where the spool (see spool.go) makes them
// durable for the continuous trainer.
//
// The capture contract is strict because Tuner.End runs inside every
// kernel launch: the unsampled path costs one atomic load plus one
// atomic add and allocates nothing; the sampled path extracts features
// into a preallocated ring slot and never blocks (a full ring drops the
// sample and counts the drop).
package telemetry

import (
	"fmt"
	"hash/fnv"
	"sync/atomic"

	"apollo/internal/caliper"
	"apollo/internal/core"
	"apollo/internal/dataset"
	"apollo/internal/features"
	"apollo/internal/raja"
)

// Options tunes a Recorder; the zero value picks sensible defaults.
type Options struct {
	// SampleEvery records one launch in every SampleEvery, rounded up
	// to a power of two so the unsampled decision is a mask test, not a
	// division (default 1: record everything; a production tuner
	// deciding millions of times per second would set this in the
	// thousands).
	SampleEvery uint64
	// Capacity is the ring size in samples, rounded up to a power of
	// two (default 4096). When the uploader falls behind, the oldest
	// unsent capacity is not overwritten — new samples are dropped and
	// counted, so the consumer never races a producer over a slot.
	Capacity int
}

// Recorder captures sampled launch measurements into a bounded ring.
// Record is safe for any number of concurrent producers; Drain may run
// concurrently with producers (it is the consumer side of the ring).
type Recorder struct {
	schema     *features.Schema
	ann        *caliper.Annotations
	every      uint64 // power of two; sampleMask = every-1
	sampleMask uint64
	columns    []string

	seq      atomic.Uint64 // launches seen (sampling counter)
	recorded atomic.Uint64 // samples enqueued
	dropped  atomic.Uint64 // samples lost to a full ring

	// Vyukov bounded MPMC queue: each slot carries a sequence number
	// that encodes whether it is free for the producer at a given
	// ticket or holds data for the consumer at a given ticket.
	mask    uint64
	slots   []slot
	enqueue atomic.Uint64
	dequeue atomic.Uint64
}

// slot is one ring cell with its preallocated row storage.
type slot struct {
	seq atomic.Uint64
	row []float64
	_   [4]uint64 // pad to keep neighboring seq words off one cache line
}

// NewRecorder returns a recorder capturing vectors of schema (plus the
// chosen policy, chunk, and elapsed time) against the annotation
// blackboard ann (which may be nil).
func NewRecorder(schema *features.Schema, ann *caliper.Annotations, opts Options) *Recorder {
	if opts.SampleEvery == 0 {
		opts.SampleEvery = 1
	}
	every := uint64(1)
	for every < opts.SampleEvery {
		every <<= 1
	}
	if opts.Capacity <= 0 {
		opts.Capacity = 4096
	}
	capacity := 1
	for capacity < opts.Capacity {
		capacity <<= 1
	}
	r := &Recorder{
		schema:     schema,
		ann:        ann,
		every:      every,
		sampleMask: every - 1,
		columns:    core.RecordColumns(schema),
		mask:       uint64(capacity - 1),
		slots:      make([]slot, capacity),
	}
	width := schema.Len() + 3
	backing := make([]float64, capacity*width)
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
		r.slots[i].row = backing[i*width : (i+1)*width : (i+1)*width]
	}
	return r
}

// Columns returns the row layout: the schema's features, then the
// policy, chunk, and time_ns columns (core.RecordColumns order).
func (r *Recorder) Columns() []string { return append([]string(nil), r.columns...) }

// Schema returns the capture schema.
func (r *Recorder) Schema() *features.Schema { return r.schema }

// Seen returns how many launches the recorder has observed.
func (r *Recorder) Seen() uint64 { return r.seq.Load() }

// Recorded returns how many samples entered the ring.
func (r *Recorder) Recorded() uint64 { return r.recorded.Load() }

// Dropped returns how many sampled launches were lost to a full ring.
func (r *Recorder) Dropped() uint64 { return r.dropped.Load() }

// Record observes one finished launch. The unsampled path is two atomic
// operations and zero allocations; the sampled path claims a ring slot,
// extracts the feature vector into its preallocated row, and publishes
// it. It never blocks: contention resolves by CAS retry and a full ring
// drops the sample.
//
//apollo:hotpath
func (r *Recorder) Record(k *raja.Kernel, iset *raja.IndexSet, p raja.Params, elapsedNS float64) {
	if r.seq.Add(1)&r.sampleMask != 0 {
		return
	}
	for {
		pos := r.enqueue.Load()
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		switch {
		case seq == pos:
			if !r.enqueue.CompareAndSwap(pos, pos+1) {
				continue
			}
			n := r.schema.Len()
			r.schema.ExtractInto(s.row[:n], k, iset, r.ann)
			s.row[n] = float64(p.Policy)
			s.row[n+1] = float64(p.Chunk)
			s.row[n+2] = elapsedNS
			s.seq.Store(pos + 1) // publish: consumer ticket pos may now read
			r.recorded.Add(1)
			return
		case seq < pos:
			// The consumer has not freed this slot yet: the ring is
			// full. Drop rather than stall the launch path.
			r.dropped.Add(1)
			return
		default:
			// Another producer advanced enqueue between our loads;
			// retry with the fresh position.
		}
	}
}

// Drain moves up to max buffered samples (everything when max <= 0) into
// a frame laid out by Columns, returning nil when the ring is empty.
func (r *Recorder) Drain(max int) *dataset.Frame {
	var frame *dataset.Frame
	for n := 0; max <= 0 || n < max; n++ {
		row, ok := r.take()
		if !ok {
			break
		}
		if frame == nil {
			frame = dataset.NewFrame(r.columns...)
		}
		frame.AddRow(row)
	}
	return frame
}

// take dequeues one row. Drain is called from one uploader goroutine at
// a time in practice, but take stays correct for concurrent consumers by
// copying the row out before releasing the slot to producers.
func (r *Recorder) take() ([]float64, bool) {
	for {
		pos := r.dequeue.Load()
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		switch {
		case seq == pos+1:
			if !r.dequeue.CompareAndSwap(pos, pos+1) {
				continue
			}
			out := append([]float64(nil), s.row...)
			s.seq.Store(pos + r.mask + 1) // free: producer ticket pos+cap may write
			return out, true
		case seq <= pos:
			return nil, false // empty
		default:
		}
	}
}

// BatchFormatID identifies the telemetry wire format.
const BatchFormatID = "apollo-telemetry-v1"

// Batch is the uploader→service wire format: a block of sample rows for
// one model name, self-describing via its column list and a hash of it.
// The service validates the hash, checks the columns cover the target
// model's features, and appends the rows to the model's spool.
type Batch struct {
	Format     string      `json:"format"`
	Model      string      `json:"model"`
	SchemaHash string      `json:"schema_hash"`
	Columns    []string    `json:"columns"`
	Rows       [][]float64 `json:"rows"`

	// SourceVersion and LoopID attribute the batch to the model version
	// the client was running when it captured these rows, and to the
	// retrain cycle that published that version (from the model's
	// lineage block). Both are optional batch-level metadata — the spool
	// column layout is fixed per spool, so attribution rides beside the
	// rows, not inside them — and old services ignore them.
	SourceVersion int    `json:"source_version,omitempty"`
	LoopID        string `json:"loop_id,omitempty"`
}

// NewBatch assembles a batch from a drained frame.
func NewBatch(model string, frame *dataset.Frame) *Batch {
	cols := frame.Cols()
	rows := make([][]float64, frame.Len())
	for i := range rows {
		rows[i] = frame.Row(i)
	}
	return &Batch{
		Format:     BatchFormatID,
		Model:      model,
		SchemaHash: ColumnsHash(cols),
		Columns:    cols,
		Rows:       rows,
	}
}

// Validate checks the batch's internal consistency: format identifier,
// schema hash, and row widths.
func (b *Batch) Validate() error {
	if b.Format != BatchFormatID {
		return fmt.Errorf("telemetry: unknown batch format %q (want %q)", b.Format, BatchFormatID)
	}
	if b.Model == "" {
		return fmt.Errorf("telemetry: batch has no model name")
	}
	if len(b.Columns) == 0 {
		return fmt.Errorf("telemetry: batch has no columns")
	}
	if got := ColumnsHash(b.Columns); b.SchemaHash != got {
		return fmt.Errorf("telemetry: batch schema hash %s does not match columns (%s)", b.SchemaHash, got)
	}
	for i, row := range b.Rows {
		if len(row) != len(b.Columns) {
			return fmt.Errorf("telemetry: row %d has %d values, want %d", i, len(row), len(b.Columns))
		}
	}
	return nil
}

// Frame converts the batch's rows back into a frame.
func (b *Batch) Frame() *dataset.Frame {
	f := dataset.NewFrame(b.Columns...)
	for _, row := range b.Rows {
		f.AddRow(row)
	}
	return f
}

// ColumnsHash fingerprints an ordered column list, the telemetry
// analogue of core.Model.SchemaHash: equal hashes mean rows are laid out
// identically and can share a spool.
func ColumnsHash(cols []string) string {
	h := fnv.New64a()
	h.Write([]byte(BatchFormatID))
	for _, c := range cols {
		h.Write([]byte{0})
		h.Write([]byte(c))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
