// Spool files make ingested telemetry durable for the continuous
// trainer. A spool is a directory of numbered JSONL segments in the
// dataset frame format (header line with the columns, then one JSON
// array per row), so every sealed segment is directly loadable by
// dataset.ReadJSONL and apollo-train. The writer appends whole lines to
// the active segment and rotates to a fresh segment number once the
// active one exceeds the size cap — rotation switches files atomically
// under the spool lock and never renames, so a concurrently tailing
// reader can keep its per-segment byte offsets. The reader (Cursor)
// consumes only '\n'-terminated lines, which makes it safe to tail the
// active segment of a live writer in another process: a torn final line
// is simply left for the next poll.

package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"apollo/internal/dataset"
)

// DefaultSegmentBytes is the rotation threshold for spool segments.
const DefaultSegmentBytes = 8 << 20

// segPrefix/segSuffix frame the zero-padded segment number.
const (
	segPrefix = "seg-"
	segSuffix = ".jsonl"
)

// spoolHeader is the first line of every segment — the dataset JSONL
// frame header, so segments double as ordinary training-data files.
type spoolHeader struct {
	Format  string   `json:"format"`
	Columns []string `json:"columns"`
}

const spoolFrameFormatID = "apollo-frame-v1"

// Spool appends telemetry rows durably under one directory.
type Spool struct {
	dir      string
	maxBytes int64

	mu       sync.Mutex //apollo:lockrank 40
	columns  []string
	seq      int
	f        *os.File
	size     int64
	appended uint64
}

// OpenSpool opens (creating if needed) the spool at dir. Appends rotate
// to a new segment once the active one exceeds maxSegmentBytes
// (DefaultSegmentBytes when <= 0). If segments already exist, their
// column layout is adopted and writing resumes on a fresh segment, so a
// restarted daemon never appends mid-file.
func OpenSpool(dir string, maxSegmentBytes int64) (*Spool, error) {
	if maxSegmentBytes <= 0 {
		maxSegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Spool{dir: dir, maxBytes: maxSegmentBytes}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) > 0 {
		s.seq = segs[len(segs)-1]
		cols, err := readSegmentColumns(s.segmentPath(segs[0]))
		if err != nil {
			return nil, fmt.Errorf("telemetry: reading spool %s: %w", dir, err)
		}
		s.columns = cols
	}
	return s, nil
}

// Dir returns the spool directory.
func (s *Spool) Dir() string { return s.dir }

// Columns returns the spool's row layout (nil before the first append of
// a fresh spool).
func (s *Spool) Columns() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.columns...)
}

// Appended returns the number of rows written over the spool's lifetime
// in this process.
func (s *Spool) Appended() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appended
}

// Append writes rows laid out by columns. The first append fixes the
// spool's layout; later appends must match it exactly or fail without
// writing anything.
//
//apollo:lockok s.mu exists to serialize segment file writes and rotation; Append is the off-request ingest path
func (s *Spool) Append(columns []string, rows [][]float64) error {
	for i, row := range rows {
		if len(row) != len(columns) {
			return fmt.Errorf("telemetry: spool row %d has %d values, want %d", i, len(row), len(columns))
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.columns == nil {
		s.columns = append([]string(nil), columns...)
	} else if !equalColumns(s.columns, columns) {
		return fmt.Errorf("telemetry: spool %s expects columns %v, got %v", s.dir, s.columns, columns)
	}
	if len(rows) == 0 {
		return nil
	}
	if s.f == nil {
		if err := s.openSegmentLocked(); err != nil {
			return err
		}
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, row := range rows {
		if err := enc.Encode(row); err != nil {
			return err
		}
	}
	n, err := s.f.Write(buf.Bytes())
	s.size += int64(n)
	if err != nil {
		return err
	}
	s.appended += uint64(len(rows))
	if s.size >= s.maxBytes {
		return s.rotateLocked()
	}
	return nil
}

// Rotate seals the active segment so the next append starts a new one.
// Rotating an idle spool is a no-op.
//
//apollo:lockok s.mu exists to serialize segment file writes and rotation
func (s *Spool) Rotate() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	return s.rotateLocked()
}

// Close seals the active segment.
func (s *Spool) Close() error { return s.Rotate() }

func (s *Spool) rotateLocked() error {
	err := s.f.Close()
	s.f, s.size = nil, 0
	return err
}

// openSegmentLocked starts the next segment and writes its header line.
func (s *Spool) openSegmentLocked() error {
	s.seq++
	f, err := os.OpenFile(s.segmentPath(s.seq), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	hdr, err := json.Marshal(spoolHeader{Format: spoolFrameFormatID, Columns: s.columns})
	if err != nil {
		f.Close() //apollo:errok Close on the error path; the write error is already being returned
		return err
	}
	hdr = append(hdr, '\n')
	n, err := f.Write(hdr)
	if err != nil {
		f.Close() //apollo:errok Close on the error path; the write error is already being returned
		return err
	}
	s.f, s.size = f, int64(n)
	return nil
}

func (s *Spool) segmentPath(seq int) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix))
}

// listSegments returns the segment numbers present in dir, ascending.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var segs []int
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix))
		if err != nil || n <= 0 {
			continue
		}
		segs = append(segs, n)
	}
	sort.Ints(segs)
	return segs, nil
}

// readSegmentColumns parses a segment's header line.
func readSegmentColumns(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var hdr spoolHeader
	if err := json.NewDecoder(f).Decode(&hdr); err != nil {
		return nil, err
	}
	if hdr.Format != spoolFrameFormatID {
		return nil, fmt.Errorf("telemetry: segment %s has format %q, want %q", path, hdr.Format, spoolFrameFormatID)
	}
	return hdr.Columns, nil
}

// Cursor tails a spool directory, returning only rows it has not
// returned before. It tracks a byte offset per segment, consumes only
// complete lines, and tolerates a partially written final line (left for
// the next poll), so it can follow a spool that another process is
// actively appending to.
type Cursor struct {
	dir string

	mu      sync.Mutex //apollo:lockrank 41
	offsets map[int]int64
	columns []string
}

// NewCursor returns a cursor over the spool at dir, positioned at the
// beginning (the first Poll returns everything already spooled).
func NewCursor(dir string) *Cursor {
	return &Cursor{dir: dir, offsets: map[int]int64{}}
}

// Columns returns the spool layout seen so far (nil before any rows).
func (c *Cursor) Columns() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.columns...)
}

// Poll reads every complete row appended since the previous Poll,
// returning nil when there is nothing new. A spool directory that does
// not exist yet reads as empty, so a trainer may start before the first
// batch arrives.
//
//apollo:lockok c.mu exists to serialize the cursor's segment reads and offset bookkeeping
func (c *Cursor) Poll() (*dataset.Frame, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	segs, err := listSegments(c.dir)
	if err != nil {
		return nil, err
	}
	var frame *dataset.Frame
	for _, seq := range segs {
		path := filepath.Join(c.dir, fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix))
		if err := c.pollSegmentLocked(path, seq, &frame); err != nil {
			return nil, fmt.Errorf("telemetry: tailing %s: %w", path, err)
		}
	}
	return frame, nil
}

func (c *Cursor) pollSegmentLocked(path string, seq int, frame **dataset.Frame) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil // raced a writer listing; next poll sees it
		}
		return err
	}
	offset := c.offsets[seq]
	if offset > int64(len(data)) {
		// The segment shrank (operator intervention); restart it.
		offset = 0
	}
	buf := data[offset:]
	// Consume only complete lines; a torn tail waits for the next poll.
	end := bytes.LastIndexByte(buf, '\n')
	if end < 0 {
		return nil
	}
	buf = buf[:end+1]
	consumed := int64(0)
	for len(buf) > 0 {
		nl := bytes.IndexByte(buf, '\n')
		line := buf[:nl]
		buf = buf[nl+1:]
		lineLen := int64(nl + 1)
		if offset+consumed == 0 {
			var hdr spoolHeader
			if err := json.Unmarshal(line, &hdr); err != nil {
				return fmt.Errorf("bad header: %w", err)
			}
			if hdr.Format != spoolFrameFormatID {
				return fmt.Errorf("format %q, want %q", hdr.Format, spoolFrameFormatID)
			}
			if c.columns == nil {
				c.columns = append([]string(nil), hdr.Columns...)
			} else if !equalColumns(c.columns, hdr.Columns) {
				return fmt.Errorf("columns changed: %v -> %v", c.columns, hdr.Columns)
			}
			consumed += lineLen
			continue
		}
		var row []float64
		if err := json.Unmarshal(line, &row); err != nil {
			return fmt.Errorf("bad row: %w", err)
		}
		if len(row) != len(c.columns) {
			return fmt.Errorf("row has %d values, want %d", len(row), len(c.columns))
		}
		if *frame == nil {
			*frame = dataset.NewFrame(c.columns...)
		}
		(*frame).AddRow(row)
		consumed += lineLen
	}
	c.offsets[seq] = offset + consumed
	return nil
}

func equalColumns(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
