package telemetry

import (
	"os"
	"path/filepath"
	"testing"

	"apollo/internal/dataset"
)

func TestSpoolAppendRotateAndCursorTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSpool(dir, 200) // tiny cap: force rotation quickly
	if err != nil {
		t.Fatal(err)
	}
	cols := []string{"a", "b"}
	cur := NewCursor(dir)

	if err := s.Append(cols, [][]float64{{1, 10}, {2, 20}}); err != nil {
		t.Fatal(err)
	}
	frame, err := cur.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if frame == nil || frame.Len() != 2 || frame.At(1, "b") != 20 {
		t.Fatalf("first poll = %v", frame)
	}

	// Column mismatch is rejected without writing.
	if err := s.Append([]string{"a"}, [][]float64{{1}}); err == nil {
		t.Error("mismatched columns accepted")
	}
	// Row width mismatch is rejected.
	if err := s.Append(cols, [][]float64{{1}}); err == nil {
		t.Error("short row accepted")
	}

	// Enough data to rotate at least once.
	for i := 0; i < 30; i++ {
		if err := s.Append(cols, [][]float64{{float64(i), float64(i) * 2}}); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected rotation, found segments %v", segs)
	}
	frame, err = cur.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if frame == nil || frame.Len() != 30 {
		t.Fatalf("tail poll rows = %v, want 30", frame)
	}
	if f, err := cur.Poll(); err != nil || f != nil {
		t.Fatalf("idle poll = %v, %v", f, err)
	}
	if s.Appended() != 32 {
		t.Errorf("appended = %d, want 32", s.Appended())
	}

	// Sealed segments are plain dataset JSONL frames.
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	f, err := dataset.LoadJSONL(filepath.Join(dir, "seg-00000001.jsonl"))
	if err != nil {
		t.Fatalf("sealed segment not a loadable frame: %v", err)
	}
	if f.Col("a") < 0 || f.Col("b") < 0 {
		t.Errorf("segment columns = %v", f.Cols())
	}
}

func TestCursorToleratesTornTailLine(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSpool(dir, DefaultSegmentBytes)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]string{"x"}, [][]float64{{1}}); err != nil {
		t.Fatal(err)
	}
	// Simulate a writer mid-line: append bytes with no trailing newline.
	seg := filepath.Join(dir, "seg-00000001.jsonl")
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("[2"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cur := NewCursor(dir)
	frame, err := cur.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if frame == nil || frame.Len() != 1 {
		t.Fatalf("torn-tail poll = %v, want the 1 complete row", frame)
	}

	// The line completes; the next poll picks up exactly the new row.
	f, err = os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("]\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	frame, err = cur.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if frame == nil || frame.Len() != 1 || frame.At(0, "x") != 2 {
		t.Fatalf("completed-line poll = %v, want row [2]", frame)
	}
}

func TestSpoolReopenResumesOnFreshSegment(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSpool(dir, DefaultSegmentBytes)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]string{"x"}, [][]float64{{1}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenSpool(dir, DefaultSegmentBytes)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Columns(); len(got) != 1 || got[0] != "x" {
		t.Fatalf("reopened columns = %v", got)
	}
	// Reopened spools reject a different layout.
	if err := s2.Append([]string{"y"}, [][]float64{{2}}); err == nil {
		t.Error("layout change accepted across reopen")
	}
	if err := s2.Append([]string{"x"}, [][]float64{{2}}); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) != 2 {
		t.Fatalf("segments after reopen = %v (%v), want 2", segs, err)
	}
	cur := NewCursor(dir)
	frame, err := cur.Poll()
	if err != nil || frame == nil || frame.Len() != 2 {
		t.Fatalf("cursor over reopened spool = %v, %v", frame, err)
	}
}
