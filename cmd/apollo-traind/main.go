// Command apollo-traind is the continuous-training daemon that closes
// Apollo's loop. It tails the telemetry spool that apollo-serve
// -telemetry writes, watches the deployed champion for drift (mispredict
// rate against observed-fastest variants, feature-distribution shift),
// retrains a challenger on the spooled window when drift fires, and
// publishes it back to the model service only if it does not regress the
// champion on held-out telemetry. Every connected tuner then hot-swaps
// to the new model through the ordinary client polling path.
//
//	apollo-traind -server http://127.0.0.1:8080 -spool ./spool \
//	    -model lulesh/policy -interval 5s
//
// With -once the daemon runs a single poll-check-retrain step and exits,
// which makes it scriptable (cron, CI smoke tests). -metrics-addr serves
// the loop counters in Prometheus text format.
//
// Collective training (fleet mode): -spools takes id=dir pairs naming
// every replica's spool root, and the trainer tails their union, so the
// window holds the whole fleet's observations of the model. -replicas
// takes id=url pairs; each replica's current champion becomes a publish
// incumbent the challenger must beat on the holdout before shipping.
// Setting APOLLO_COLLECTIVE_TRAINING=0 in the environment collapses both
// back to single-replica behavior without editing the command line.
package main

import (
	"context"
	"flag"
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"apollo/internal/client"
	"apollo/internal/core"
	"apollo/internal/drift"
	"apollo/internal/features"
	"apollo/internal/fleet"
	"apollo/internal/flight"
	"apollo/internal/looptrace"
	"apollo/internal/metrics"
	"apollo/internal/telemetry"
	"apollo/internal/trainer"
)

// daemonConfig is everything run needs; main fills it from flags, tests
// fill it directly.
type daemonConfig struct {
	serverURL string
	spool     string // single-replica spool root
	spools    string // collective: id=dir per replica spool root
	replicas  string // collective: id=url per replica service
	model     string
	param     string
	interval  time.Duration
	once      bool

	metricsAddr string
	debugAddr   string
	loopJournal string

	mispredict    float64
	shift         float64
	minRows       int
	maxRegression float64
	holdout       float64

	debugReady func(net.Addr)
}

func main() {
	var cfg daemonConfig
	flag.StringVar(&cfg.serverURL, "server", "http://127.0.0.1:8080", "model service base URL (publish target)")
	flag.StringVar(&cfg.spool, "spool", "apollo-spool", "telemetry spool root (apollo-serve -telemetry dir)")
	flag.StringVar(&cfg.spools, "spools", "", "collective training: comma-separated id=dir spool roots, one per replica (overrides -spool)")
	flag.StringVar(&cfg.replicas, "replicas", "", "collective training: comma-separated id=url fleet replicas whose champions gate publishes")
	flag.StringVar(&cfg.model, "model", "", "model name to keep trained (required)")
	flag.StringVar(&cfg.param, "param", "execution_policy", "parameter to train: execution_policy or chunk_size")
	flag.DurationVar(&cfg.interval, "interval", 5*time.Second, "poll-check-retrain cadence")
	flag.BoolVar(&cfg.once, "once", false, "run one step and exit")
	flag.StringVar(&cfg.metricsAddr, "metrics-addr", "", "serve /metrics on this address (empty disables)")
	flag.StringVar(&cfg.debugAddr, "debug-addr", "", "serve /debug/apollo/{flight,trace} and pprof on this address (empty disables)")
	flag.StringVar(&cfg.loopJournal, "loop-journal", "", "directory for the closed-loop event journal; enables loop tracing and /debug/apollo/loop")
	flag.Float64Var(&cfg.mispredict, "mispredict", 0.25, "mispredict-rate retrain threshold")
	flag.Float64Var(&cfg.shift, "shift", 6, "feature-shift (z-score) retrain threshold")
	flag.IntVar(&cfg.minRows, "min-rows", 8, "smallest labeled window worth judging")
	flag.Float64Var(&cfg.maxRegression, "max-regression", 0.02, "tolerated challenger predicted-time regression")
	flag.Float64Var(&cfg.holdout, "holdout", 0.25, "holdout fraction for the champion/challenger duel")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "apollo-traind:", err)
		os.Exit(1)
	}
}

// trainerSiteFeatures names the "feature vector" of a trainer step's
// flight record: the loop state that drove the step's decision.
var trainerSiteFeatures = []string{
	"new_rows", "window_rows", "trigger", "retrained", "published", "version",
}

// collectiveEnabled applies the APOLLO_COLLECTIVE_TRAINING switch: the
// fleet flags opt in, the env var (0/false) forces single-replica
// behavior without rewriting the command line.
func collectiveEnabled(cfg daemonConfig) bool {
	if cfg.spools == "" && cfg.replicas == "" {
		return false
	}
	switch strings.ToLower(os.Getenv("APOLLO_COLLECTIVE_TRAINING")) {
	case "0", "false", "off":
		return false
	}
	return true
}

func run(ctx context.Context, cfg daemonConfig) error {
	model := cfg.model
	if model == "" {
		return fmt.Errorf("-model is required")
	}
	var p core.Parameter
	switch cfg.param {
	case "execution_policy":
		p = core.ExecutionPolicy
	case "chunk_size":
		p = core.ChunkSize
	default:
		return fmt.Errorf("unknown -param %q", cfg.param)
	}

	collective := collectiveEnabled(cfg)
	var cur trainer.Cursor
	var merged *fleet.MergedCursor
	if collective && cfg.spools != "" {
		roots, err := fleet.ParsePeers(cfg.spools)
		if err != nil {
			return fmt.Errorf("-spools: %w", err)
		}
		sources := make(map[string]string, len(roots))
		for _, r := range roots {
			sources[r.ID] = filepath.Join(r.Base, filepath.FromSlash(model))
		}
		merged, err = fleet.NewMergedCursor(sources)
		if err != nil {
			return err
		}
		cur = merged
		fmt.Printf("apollo-traind: collective training over %d spools\n", len(sources))
	} else {
		cur = telemetry.NewCursor(filepath.Join(cfg.spool, filepath.FromSlash(model)))
	}

	var incumbents []trainer.Publisher
	if collective && cfg.replicas != "" {
		peers, err := fleet.ParsePeers(cfg.replicas)
		if err != nil {
			return fmt.Errorf("-replicas: %w", err)
		}
		for _, peer := range peers {
			incumbents = append(incumbents,
				trainer.NewClientPublisher(client.New(peer.Base, client.Options{})))
		}
		fmt.Printf("apollo-traind: publishes gated on %d replica incumbents\n", len(incumbents))
	}

	var lt *looptrace.Tracer
	if cfg.loopJournal != "" {
		lt = looptrace.New("traind", looptrace.Options{})
		if err := lt.OpenJournal(cfg.loopJournal); err != nil {
			return err
		}
		defer lt.Close()
		flushDone := lt.Start(ctx, time.Second)
		defer func() { <-flushDone }()
		fmt.Printf("apollo-traind: loop journal at %s\n", looptrace.JournalPath(cfg.loopJournal, "traind"))
	}

	pub := trainer.NewClientPublisher(client.New(cfg.serverURL, client.Options{}))
	tr, err := trainer.New(cur, pub, trainer.Config{
		Name:   model,
		Param:  p,
		Schema: features.TableI(),
		Drift: drift.Config{
			MinRows:             cfg.minRows,
			MispredictThreshold: cfg.mispredict,
			ShiftThreshold:      cfg.shift,
		},
		MaxRegression: cfg.maxRegression,
		Holdout:       cfg.holdout,
		Incumbents:    incumbents,
		ID:            "traind",
		Trace:         lt,
		Logf: func(format string, args ...any) {
			fmt.Printf("apollo-traind: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}

	met := metrics.New()
	rc := metrics.NewRuntimeCollector(met)
	fr := flight.New(flight.Options{Shards: 1, ShardCapacity: 256, FeatureNames: trainerSiteFeatures})
	h := fnv.New64a()
	h.Write([]byte("apollo-traind/" + model))
	siteID := h.Sum64()
	fr.RegisterSite(siteID, "traind:"+model, trainerSiteFeatures)
	if cfg.debugAddr != "" {
		dln, err := net.Listen("tcp", cfg.debugAddr)
		if err != nil {
			return err
		}
		defer dln.Close()
		fmt.Printf("apollo-traind: debug on http://%s/debug/apollo/flight\n", dln.Addr())
		if cfg.debugReady != nil {
			cfg.debugReady(dln.Addr())
		}
		dmux := flight.DebugMux(fr)
		looptrace.RegisterDebug(dmux, lt)
		go http.Serve(dln, dmux)
	}
	if cfg.metricsAddr != "" {
		ln, err := net.Listen("tcp", cfg.metricsAddr)
		if err != nil {
			return err
		}
		defer ln.Close()
		mux := http.NewServeMux()
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			rc.Collect() // refresh goroutine/heap/GC-pause self-metrics
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			met.WritePrometheus(w) //apollo:errok metrics endpoint: a client gone mid-scrape has no receiver for the error
		})
		fmt.Printf("apollo-traind: metrics on http://%s/metrics\n", ln.Addr())
		go http.Serve(ln, mux)
	}

	step := func() error {
		t0 := flight.Now()
		res, err := tr.Step()
		stepNS := float64(flight.Now() - t0)
		if err != nil {
			return err
		}
		// Each loop step is one "decision" on the flight recorder: the
		// features are the loop state, the class is whether a challenger
		// was published, and the observed runtime is the step's cost.
		b2f := func(b bool) float64 {
			if b {
				return 1
			}
			return 0
		}
		class := 0
		if res.Published {
			class = 1
		}
		rec, tok := fr.Reserve(siteID)
		if rec != nil {
			rec.Policy = int32(class)
			rec.Predicted = int32(class)
			rec.NumFeatures = 6
			rec.Features[0] = float64(res.NewRows)
			rec.Features[1] = float64(res.WindowRows)
			rec.Features[2] = b2f(res.Trigger != nil)
			rec.Features[3] = b2f(res.Retrained)
			rec.Features[4] = b2f(res.Published)
			rec.Features[5] = float64(res.Version)
			rec.ObservedNS = stepNS
			rec.PredictedNS = fr.PredictObserve(siteID, class, stepNS)
		}
		fr.Commit(tok)
		gauge := func(name, help string, v int64) {
			met.GaugeSet(name, "model", model, help, v)
		}
		gauge("apollo_trainer_window_rows", "Telemetry rows in the training window.", int64(res.WindowRows))
		gauge("apollo_trainer_drift_triggers_total", "Drift triggers fired.", int64(tr.Triggers()))
		gauge("apollo_trainer_retrains_total", "Challengers trained.", int64(tr.Retrains()))
		gauge("apollo_trainer_publishes_total", "Challengers published.", int64(tr.Publishes()))
		gauge("apollo_trainer_rejects_total", "Challengers rejected by the holdout duel.", int64(tr.Rejects()))
		gauge("apollo_trainer_incumbent_vetoes_total", "Publishes blocked by a fleet incumbent.", int64(tr.Vetoes()))
		const stageHelp = "Closed-loop stage durations, by stage."
		met.ObserveLabeled("apollo_loop_stage_seconds", "stage", "step", stageHelp, stepNS/1e9)
		if res.Retrained {
			met.ObserveLabeled("apollo_loop_stage_seconds", "stage", "retrain", stageHelp, res.RetrainNS/1e9)
		}
		if res.DuelNS > 0 {
			met.ObserveLabeled("apollo_loop_stage_seconds", "stage", "duel", stageHelp, res.DuelNS/1e9)
		}
		if res.Published {
			met.ObserveLabeled("apollo_loop_stage_seconds", "stage", "publish", stageHelp, res.PublishNS/1e9)
			met.GaugeSet("apollo_model_lineage", "model,version,parent,loop",
				fmt.Sprintf("%s,%d,%d,%s", model, res.Version, res.ParentVersion, res.LoopID),
				"Model provenance info-series: the loop that trained each published version and the parent it replaced.", 1)
		}
		if merged != nil {
			merged.ExportMetrics(met)
		}
		if cfg.once || res.NewRows > 0 {
			fmt.Printf("apollo-traind: step new_rows=%d window=%d trigger=%v retrained=%v published=%v version=%d\n",
				res.NewRows, res.WindowRows, res.Trigger != nil, res.Retrained, res.Published, res.Version)
		}
		return nil
	}

	if cfg.once {
		return step()
	}
	watching := cfg.spool
	if merged != nil {
		watching = cfg.spools
	}
	fmt.Printf("apollo-traind: watching %s for %s every %v\n", watching, model, cfg.interval)
	tick := time.NewTicker(cfg.interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			fmt.Println("apollo-traind: shutting down")
			return nil
		case <-tick.C:
			if err := step(); err != nil {
				fmt.Fprintln(os.Stderr, "apollo-traind: step:", err)
			}
		}
	}
}
