// Command apollo-traind is the continuous-training daemon that closes
// Apollo's loop. It tails the telemetry spool that apollo-serve
// -telemetry writes, watches the deployed champion for drift (mispredict
// rate against observed-fastest variants, feature-distribution shift),
// retrains a challenger on the spooled window when drift fires, and
// publishes it back to the model service only if it does not regress the
// champion on held-out telemetry. Every connected tuner then hot-swaps
// to the new model through the ordinary client polling path.
//
//	apollo-traind -server http://127.0.0.1:8080 -spool ./spool \
//	    -model lulesh/policy -interval 5s
//
// With -once the daemon runs a single poll-check-retrain step and exits,
// which makes it scriptable (cron, CI smoke tests). -metrics-addr serves
// the loop counters in Prometheus text format.
package main

import (
	"context"
	"flag"
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"apollo/internal/client"
	"apollo/internal/core"
	"apollo/internal/drift"
	"apollo/internal/features"
	"apollo/internal/flight"
	"apollo/internal/metrics"
	"apollo/internal/telemetry"
	"apollo/internal/trainer"
)

func main() {
	serverURL := flag.String("server", "http://127.0.0.1:8080", "model service base URL")
	spool := flag.String("spool", "apollo-spool", "telemetry spool root (apollo-serve -telemetry dir)")
	model := flag.String("model", "", "model name to keep trained (required)")
	param := flag.String("param", "execution_policy", "parameter to train: execution_policy or chunk_size")
	interval := flag.Duration("interval", 5*time.Second, "poll-check-retrain cadence")
	once := flag.Bool("once", false, "run one step and exit")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics on this address (empty disables)")
	debugAddr := flag.String("debug-addr", "", "serve /debug/apollo/{flight,trace} and pprof on this address (empty disables)")
	mispredict := flag.Float64("mispredict", 0.25, "mispredict-rate retrain threshold")
	shift := flag.Float64("shift", 6, "feature-shift (z-score) retrain threshold")
	minRows := flag.Int("min-rows", 8, "smallest labeled window worth judging")
	maxRegression := flag.Float64("max-regression", 0.02, "tolerated challenger predicted-time regression")
	holdout := flag.Float64("holdout", 0.25, "holdout fraction for the champion/challenger duel")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *serverURL, *spool, *model, *param, *interval, *once, *metricsAddr,
		*debugAddr, *mispredict, *shift, *minRows, *maxRegression, *holdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "apollo-traind:", err)
		os.Exit(1)
	}
}

// trainerSiteFeatures names the "feature vector" of a trainer step's
// flight record: the loop state that drove the step's decision.
var trainerSiteFeatures = []string{
	"new_rows", "window_rows", "trigger", "retrained", "published", "version",
}

func run(ctx context.Context, serverURL, spool, model, param string, interval time.Duration,
	once bool, metricsAddr, debugAddr string, mispredict, shift float64, minRows int,
	maxRegression, holdout float64, debugReady func(net.Addr)) error {
	if model == "" {
		return fmt.Errorf("-model is required")
	}
	var p core.Parameter
	switch param {
	case "execution_policy":
		p = core.ExecutionPolicy
	case "chunk_size":
		p = core.ChunkSize
	default:
		return fmt.Errorf("unknown -param %q", param)
	}

	cur := telemetry.NewCursor(filepath.Join(spool, filepath.FromSlash(model)))
	pub := trainer.NewClientPublisher(client.New(serverURL, client.Options{}))
	tr, err := trainer.New(cur, pub, trainer.Config{
		Name:   model,
		Param:  p,
		Schema: features.TableI(),
		Drift: drift.Config{
			MinRows:             minRows,
			MispredictThreshold: mispredict,
			ShiftThreshold:      shift,
		},
		MaxRegression: maxRegression,
		Holdout:       holdout,
		Logf: func(format string, args ...any) {
			fmt.Printf("apollo-traind: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}

	met := metrics.New()
	rc := metrics.NewRuntimeCollector(met)
	fr := flight.New(flight.Options{Shards: 1, ShardCapacity: 256, FeatureNames: trainerSiteFeatures})
	h := fnv.New64a()
	h.Write([]byte("apollo-traind/" + model))
	siteID := h.Sum64()
	fr.RegisterSite(siteID, "traind:"+model, trainerSiteFeatures)
	if debugAddr != "" {
		dln, err := net.Listen("tcp", debugAddr)
		if err != nil {
			return err
		}
		defer dln.Close()
		fmt.Printf("apollo-traind: debug on http://%s/debug/apollo/flight\n", dln.Addr())
		if debugReady != nil {
			debugReady(dln.Addr())
		}
		go http.Serve(dln, flight.DebugMux(fr))
	}
	if metricsAddr != "" {
		ln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			return err
		}
		defer ln.Close()
		mux := http.NewServeMux()
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			rc.Collect() // refresh goroutine/heap/GC-pause self-metrics
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			met.WritePrometheus(w)
		})
		fmt.Printf("apollo-traind: metrics on http://%s/metrics\n", ln.Addr())
		go http.Serve(ln, mux)
	}

	step := func() error {
		t0 := flight.Now()
		res, err := tr.Step()
		stepNS := float64(flight.Now() - t0)
		if err != nil {
			return err
		}
		// Each loop step is one "decision" on the flight recorder: the
		// features are the loop state, the class is whether a challenger
		// was published, and the observed runtime is the step's cost.
		b2f := func(b bool) float64 {
			if b {
				return 1
			}
			return 0
		}
		class := 0
		if res.Published {
			class = 1
		}
		rec, tok := fr.Reserve(siteID)
		if rec != nil {
			rec.Policy = int32(class)
			rec.Predicted = int32(class)
			rec.NumFeatures = 6
			rec.Features[0] = float64(res.NewRows)
			rec.Features[1] = float64(res.WindowRows)
			rec.Features[2] = b2f(res.Trigger != nil)
			rec.Features[3] = b2f(res.Retrained)
			rec.Features[4] = b2f(res.Published)
			rec.Features[5] = float64(res.Version)
			rec.ObservedNS = stepNS
			rec.PredictedNS = fr.PredictObserve(siteID, class, stepNS)
		}
		fr.Commit(tok)
		gauge := func(name, help string, v int64) {
			met.GaugeSet(name, "model", model, help, v)
		}
		gauge("apollo_trainer_window_rows", "Telemetry rows in the training window.", int64(res.WindowRows))
		gauge("apollo_trainer_drift_triggers_total", "Drift triggers fired.", int64(tr.Triggers()))
		gauge("apollo_trainer_retrains_total", "Challengers trained.", int64(tr.Retrains()))
		gauge("apollo_trainer_publishes_total", "Challengers published.", int64(tr.Publishes()))
		gauge("apollo_trainer_rejects_total", "Challengers rejected by the holdout duel.", int64(tr.Rejects()))
		if once || res.NewRows > 0 {
			fmt.Printf("apollo-traind: step new_rows=%d window=%d trigger=%v retrained=%v published=%v version=%d\n",
				res.NewRows, res.WindowRows, res.Trigger != nil, res.Retrained, res.Published, res.Version)
		}
		return nil
	}

	if once {
		return step()
	}
	fmt.Printf("apollo-traind: watching %s for %s every %v\n", spool, model, interval)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			fmt.Println("apollo-traind: shutting down")
			return nil
		case <-tick.C:
			if err := step(); err != nil {
				fmt.Fprintln(os.Stderr, "apollo-traind: step:", err)
			}
		}
	}
}
