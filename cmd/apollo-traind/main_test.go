package main

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestTraindDebugEndpoints boots the daemon against an empty spool (a
// clean no-op loop) and exercises the debug listener: every loop step
// lands on the flight recorder, the trace endpoint speaks Chrome
// trace-event JSON, and pprof is live.
func TestTraindDebugEndpoints(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	debugAddrs := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, "http://127.0.0.1:1", t.TempDir(), "loop/policy", "execution_policy",
			10*time.Millisecond, false, "", "127.0.0.1:0",
			0.25, 6, 8, 0.02, 0.25, func(a net.Addr) { debugAddrs <- a })
	}()
	var debugBase string
	select {
	case a := <-debugAddrs:
		debugBase = "http://" + a.String()
	case err := <-errc:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("debug listener never became ready")
	}

	// Each loop step emits one flight record; wait for the first.
	var capture struct {
		Format  string `json:"format"`
		Records []struct {
			Site     string             `json:"site"`
			Features map[string]float64 `json:"features"`
		} `json:"records"`
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(debugBase + "/debug/apollo/flight")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("flight endpoint status %d", resp.StatusCode)
		}
		capture.Records = nil
		if err := json.NewDecoder(resp.Body).Decode(&capture); err != nil {
			t.Fatalf("flight body: %v", err)
		}
		resp.Body.Close()
		if len(capture.Records) > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if capture.Format != "apollo-flight-v1" {
		t.Fatalf("capture format %q", capture.Format)
	}
	if len(capture.Records) == 0 {
		t.Fatal("no flight records after 10s of loop steps")
	}
	rec := capture.Records[0]
	if rec.Site != "traind:loop/policy" {
		t.Errorf("record site %q", rec.Site)
	}
	if _, ok := rec.Features["window_rows"]; !ok {
		t.Errorf("record lacks loop-state features: %v", rec.Features)
	}

	// Timed trace capture.
	resp, err := http.Get(debugBase + "/debug/apollo/trace?sec=0.05")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("trace endpoint: %v %v", resp, err)
	}
	var events []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatalf("trace body not a JSON array: %v", err)
	}
	resp.Body.Close()

	// pprof on the same listener.
	resp, err = http.Get(debugBase + "/debug/pprof/cmdline")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof: %v %v", resp, err)
	}
	resp.Body.Close()

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

func TestTraindRequiresModel(t *testing.T) {
	err := run(context.Background(), "http://127.0.0.1:1", t.TempDir(), "", "execution_policy",
		time.Second, true, "", "", 0.25, 6, 8, 0.02, 0.25, nil)
	if err == nil {
		t.Fatal("missing -model accepted")
	}
}
