package main

import (
	"net/http/httptest"
	"path/filepath"

	"apollo/internal/core"
	"apollo/internal/features"
	"apollo/internal/raja"
	"apollo/internal/registry"
	"apollo/internal/server"
	"apollo/internal/telemetry"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestTraindDebugEndpoints boots the daemon against an empty spool (a
// clean no-op loop) and exercises the debug listener: every loop step
// lands on the flight recorder, the trace endpoint speaks Chrome
// trace-event JSON, and pprof is live.
func TestTraindDebugEndpoints(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	debugAddrs := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, daemonConfig{
			serverURL:     "http://127.0.0.1:1",
			spool:         t.TempDir(),
			model:         "loop/policy",
			param:         "execution_policy",
			interval:      10 * time.Millisecond,
			debugAddr:     "127.0.0.1:0",
			mispredict:    0.25,
			shift:         6,
			minRows:       8,
			maxRegression: 0.02,
			holdout:       0.25,
			debugReady:    func(a net.Addr) { debugAddrs <- a },
		})
	}()
	var debugBase string
	select {
	case a := <-debugAddrs:
		debugBase = "http://" + a.String()
	case err := <-errc:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("debug listener never became ready")
	}

	// Each loop step emits one flight record; wait for the first.
	var capture struct {
		Format  string `json:"format"`
		Records []struct {
			Site     string             `json:"site"`
			Features map[string]float64 `json:"features"`
		} `json:"records"`
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(debugBase + "/debug/apollo/flight")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("flight endpoint status %d", resp.StatusCode)
		}
		capture.Records = nil
		if err := json.NewDecoder(resp.Body).Decode(&capture); err != nil {
			t.Fatalf("flight body: %v", err)
		}
		resp.Body.Close()
		if len(capture.Records) > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if capture.Format != "apollo-flight-v1" {
		t.Fatalf("capture format %q", capture.Format)
	}
	if len(capture.Records) == 0 {
		t.Fatal("no flight records after 10s of loop steps")
	}
	rec := capture.Records[0]
	if rec.Site != "traind:loop/policy" {
		t.Errorf("record site %q", rec.Site)
	}
	if _, ok := rec.Features["window_rows"]; !ok {
		t.Errorf("record lacks loop-state features: %v", rec.Features)
	}

	// Timed trace capture.
	resp, err := http.Get(debugBase + "/debug/apollo/trace?sec=0.05")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("trace endpoint: %v %v", resp, err)
	}
	var events []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatalf("trace body not a JSON array: %v", err)
	}
	resp.Body.Close()

	// pprof on the same listener.
	resp, err = http.Get(debugBase + "/debug/pprof/cmdline")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof: %v %v", resp, err)
	}
	resp.Body.Close()

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

func TestTraindRequiresModel(t *testing.T) {
	err := run(context.Background(), daemonConfig{
		serverURL: "http://127.0.0.1:1", spool: t.TempDir(), param: "execution_policy",
		interval: time.Second, once: true,
		mispredict: 0.25, shift: 6, minRows: 8, maxRegression: 0.02, holdout: 0.25,
	})
	if err == nil {
		t.Fatal("missing -model accepted")
	}
}

// TestTraindCollectiveFlags checks the fleet plumbing end to end in one
// -once step: two replica spools merge into the training window, the
// bootstrap publishes to the target service, and the env kill switch
// collapses back to single-spool mode.
func TestTraindCollectiveFlags(t *testing.T) {
	reg := registry.New()
	ts := httptest.NewServer(server.New(reg).Handler())
	defer ts.Close()

	rootA, rootB := t.TempDir(), t.TempDir()
	fillSpool(t, filepath.Join(rootA, "loop/policy"), []float64{32, 256, 2048})
	fillSpool(t, filepath.Join(rootB, "loop/policy"), []float64{16384, 131072})

	cfg := daemonConfig{
		serverURL: ts.URL,
		spools:    "a=" + rootA + ",b=" + rootB,
		replicas:  "a=" + ts.URL,
		model:     "loop/policy", param: "execution_policy",
		interval: time.Second, once: true,
		mispredict: 0.25, shift: 6, minRows: 4, maxRegression: 0.02, holdout: 0.25,
	}
	if !collectiveEnabled(cfg) {
		t.Fatal("fleet flags did not enable collective training")
	}
	t.Setenv("APOLLO_COLLECTIVE_TRAINING", "0")
	if collectiveEnabled(cfg) {
		t.Fatal("APOLLO_COLLECTIVE_TRAINING=0 did not disable collective training")
	}
	t.Setenv("APOLLO_COLLECTIVE_TRAINING", "1")

	if err := run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	e, ok := reg.Get("loop/policy")
	if !ok || e.Version != 1 {
		t.Fatalf("collective bootstrap did not publish: %+v ok=%v", e, ok)
	}
	// Neither spool alone holds the full crossover window; the model only
	// learns the small-kernel seq choice from the union.
	proj := e.Model.NewProjector(features.TableI())
	x := make([]float64, features.TableI().Len())
	x[features.TableI().Index(features.NumIndices)] = 64
	if proj.Predict(x) != int(raja.SeqExec) {
		t.Error("collective model picks omp for 64 indices")
	}
}

// fillSpool writes crossover telemetry (seq wins small, omp wins large)
// for the given index counts.
func fillSpool(t *testing.T, dir string, ns []float64) {
	t.Helper()
	sp, err := telemetry.OpenSpool(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	schema := features.TableI()
	cols := core.RecordColumns(schema)
	ni := schema.Index(features.NumIndices)
	var rows [][]float64
	for _, n := range ns {
		for _, pol := range []raja.Policy{raja.SeqExec, raja.OmpParallelForExec} {
			row := make([]float64, len(cols))
			row[ni] = n
			row[len(cols)-3] = float64(pol)
			if pol == raja.SeqExec {
				row[len(cols)-1] = n * 10
			} else {
				row[len(cols)-1] = 8000 + n*10/8
			}
			rows = append(rows, row)
		}
	}
	if err := sp.Append(cols, rows); err != nil {
		t.Fatal(err)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
}
