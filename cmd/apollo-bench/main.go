// Command apollo-bench regenerates the tables and figures of the paper's
// evaluation. Run with -list to see the available experiments; -exp all
// reproduces the entire evaluation section.
//
// Usage:
//
//	apollo-bench -exp table2
//	apollo-bench -exp all -quick
package main

import (
	"flag"
	"fmt"
	"os"

	"apollo/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig1, fig2, fig4, table1, table2, fig6-fig13, table3, table4, or all)")
	quick := flag.Bool("quick", false, "use reduced problem sizes and step counts")
	seed := flag.Uint64("seed", 0, "noise and cross-validation seed (0 = default)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	r := harness.NewRunner(harness.Options{Out: os.Stdout, Quick: *quick, Seed: *seed})
	if err := r.Run(*exp); err != nil {
		fmt.Fprintln(os.Stderr, "apollo-bench:", err)
		os.Exit(1)
	}
}
