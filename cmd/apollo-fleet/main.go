// Command apollo-fleet is the synthetic client-fleet load harness: it
// runs many concurrent tuner+client instances against a multi-replica
// model service and measures what the fleet layer promises — requests
// keep succeeding through a replica kill, telemetry keeps flowing, and
// tail latencies stay bounded.
//
//	apollo-fleet -replicas "r1=http://:8081,r2=http://:8082,r3=http://:8083" \
//	    -model lulesh/policy -clients 8 -steps 40 -duration 10s
//
// Each synthetic client is a full deployment: a ring-routed FleetClient
// with its own health checker, a polling model source, a tuner deciding
// simulated kernel launches (rank-decomposed through the mpirt timer, so
// the traffic has the strong-scaling shape of the paper's experiments),
// a telemetry recorder, and a timed upload loop. On top of the simulated
// launches every client probes the serving path itself with timed
// /predict round trips.
//
// The final "apollo-fleet: done ..." line is machine-parsable
// (key=value); scripts/fleet_smoke.sh asserts on failed_predicts,
// failovers, and the recorded p99s.
package main

import (
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"apollo/internal/app"
	"apollo/internal/caliper"
	"apollo/internal/client"
	"apollo/internal/features"
	"apollo/internal/fleet"
	"apollo/internal/harness"
	"apollo/internal/metrics"
	"apollo/internal/mpirt"
	"apollo/internal/platform"
	"apollo/internal/raja"
	"apollo/internal/telemetry"
	"apollo/internal/tuner"
)

func main() {
	replicas := flag.String("replicas", "", "fleet replicas as comma-separated id=url pairs (required)")
	model := flag.String("model", "", "policy model name to tune with (required)")
	appName := flag.String("app", "LULESH", "application: LULESH, CleverLeaf, or ARES")
	problem := flag.String("problem", "sedov", "input deck")
	size := flag.Int("size", 16, "global problem size")
	clients := flag.Int("clients", 4, "concurrent synthetic clients")
	steps := flag.Int("steps", 40, "minimum timesteps per client")
	duration := flag.Duration("duration", 0, "minimum wall-clock run time per client (keeps stepping past -steps)")
	ranks := flag.Int("ranks", 4, "simulated MPI ranks per client (mpirt decomposition)")
	sampleEvery := flag.Uint64("sample-every", 1, "record one launch in this many (power of two)")
	exploreEvery := flag.Uint64("explore-every", 8, "flip the chosen policy on every n-th launch (0 disables)")
	poll := flag.Duration("poll", 500*time.Millisecond, "model source poll interval")
	flush := flag.Duration("flush", 300*time.Millisecond, "telemetry upload interval")
	health := flag.Duration("health", 250*time.Millisecond, "replica health-probe interval (0 disables eviction)")
	noise := flag.Float64("noise", 0.05, "measurement noise amplitude")
	seed := flag.Uint64("seed", 1, "noise seed (client i uses seed+i)")
	metricsAddr := flag.String("metrics-addr", "", "serve fleet gauges on this address (empty disables)")
	flag.Parse()

	if _, err := run(*replicas, *model, *appName, *problem, *size, *clients, *steps, *ranks,
		*sampleEvery, *exploreEvery, *duration, *poll, *flush, *health, *noise, *seed,
		*metricsAddr); err != nil {
		fmt.Fprintln(os.Stderr, "apollo-fleet:", err)
		os.Exit(1)
	}
}

// latencies accumulates round-trip samples from all clients.
type latencies struct {
	mu sync.Mutex //apollo:lockrank 19
	ns []float64
}

func (l *latencies) add(d time.Duration) {
	l.mu.Lock()
	l.ns = append(l.ns, float64(d.Nanoseconds()))
	l.mu.Unlock()
}

// quantile returns the q-th (0..1) latency in microseconds.
func (l *latencies) quantile(q float64) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.ns) == 0 {
		return 0
	}
	s := append([]float64(nil), l.ns...)
	sort.Float64s(s)
	i := int(math.Ceil(q*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	return s[i] / 1e3
}

func (l *latencies) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ns)
}

// tally is one client's contribution to the fleet totals.
type tally struct {
	steps, decisions   int
	predicts           int
	failedPredicts     int
	posts, failedPosts int
	rows               uint64
	swaps              uint64
	failovers          uint64
	exhausted          uint64
	evictions          uint64
}

func run(replicaSpec, model, appName, problem string, size, clients, steps, ranks int,
	sampleEvery, exploreEvery uint64, duration, poll, flush, healthEvery time.Duration,
	noise float64, seed uint64, metricsAddr string) (tally, error) {
	var totals tally
	if model == "" {
		return totals, fmt.Errorf("-model is required")
	}
	peers, err := fleet.ParsePeers(replicaSpec)
	if err != nil {
		return totals, err
	}
	if len(peers) == 0 {
		return totals, fmt.Errorf("-replicas is required")
	}
	var desc app.Descriptor
	found := false
	for _, d := range harness.Apps() {
		if d.Name == appName {
			desc, found = d, true
		}
	}
	if !found {
		return totals, fmt.Errorf("unknown application %q", appName)
	}
	if clients < 1 {
		clients = 1
	}

	predictLat, ingestLat := &latencies{}, &latencies{}
	met := metrics.New()
	var metRing *client.FleetClient // first client's ring feeds the gauges
	var metMu sync.Mutex
	// exportLive publishes what is observable mid-run: ring membership
	// and the first client's failover/exhausted counters (every client
	// sees the same ring, so one is representative).
	exportLive := func() {
		metMu.Lock()
		ringClient := metRing
		metMu.Unlock()
		if ringClient == nil {
			return
		}
		fleet.ExportRing(met, ringClient.Ring())
		met.GaugeSet("apollo_fleet_failovers_total", "", "",
			"Requests retried on a non-owner replica.", int64(ringClient.Failovers()))
		met.GaugeSet("apollo_fleet_exhausted_total", "", "",
			"Requests that failed on every replica.", int64(ringClient.Exhausted()))
	}
	exportMetrics := func(totals tally) {
		exportLive()
		met.GaugeSet("apollo_fleet_failovers_total", "", "",
			"Requests retried on a non-owner replica.", int64(totals.failovers))
		met.GaugeSet("apollo_fleet_exhausted_total", "", "",
			"Requests that failed on every replica.", int64(totals.exhausted))
		met.GaugeSet("apollo_fleet_evictions_total", "", "",
			"Replicas evicted from a client ring by failed health probes.", int64(totals.evictions))
	}
	if metricsAddr != "" {
		ln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			return totals, err
		}
		defer ln.Close()
		mux := http.NewServeMux()
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			met.WritePrometheus(w) //apollo:errok metrics endpoint: a client gone mid-scrape has no receiver for the error
		})
		fmt.Printf("apollo-fleet: metrics on http://%s/metrics\n", ln.Addr())
		go http.Serve(ln, mux)
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		stopExport := make(chan struct{})
		defer close(stopExport)
		go func() {
			for {
				select {
				case <-stopExport:
					return
				case <-tick.C:
					exportLive()
				}
			}
		}()
	}

	fmt.Printf("apollo-fleet: %d clients x %d steps against %d replicas\n", clients, steps, len(peers))
	results := make(chan tally, clients)
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			t, err := runClient(i, peers, model, desc, problem, size, steps, ranks,
				sampleEvery, exploreEvery, duration, poll, flush, healthEvery,
				noise, seed+uint64(i), predictLat, ingestLat, &metMu, &metRing)
			if err != nil {
				errs <- fmt.Errorf("client %d: %w", i, err)
				return
			}
			results <- t
		}(i)
	}
	for i := 0; i < clients; i++ {
		select { //apollo:ctxok bounded collection: every spawned client sends exactly one result or error
		case err := <-errs:
			return totals, err
		case t := <-results:
			totals.steps += t.steps
			totals.decisions += t.decisions
			totals.predicts += t.predicts
			totals.failedPredicts += t.failedPredicts
			totals.posts += t.posts
			totals.failedPosts += t.failedPosts
			totals.rows += t.rows
			totals.swaps += t.swaps
			totals.failovers += t.failovers
			totals.exhausted += t.exhausted
			totals.evictions += t.evictions
		}
	}
	exportMetrics(totals)

	fmt.Printf("apollo-fleet: done clients=%d steps=%d decisions=%d predicts=%d failed_predicts=%d "+
		"p50_predict_us=%.0f p99_predict_us=%.0f posts=%d failed_posts=%d p50_ingest_us=%.0f "+
		"p99_ingest_us=%.0f rows=%d swaps=%d failovers=%d exhausted=%d evictions=%d\n",
		clients, totals.steps, totals.decisions, totals.predicts, totals.failedPredicts,
		predictLat.quantile(0.5), predictLat.quantile(0.99), totals.posts, totals.failedPosts,
		ingestLat.quantile(0.5), ingestLat.quantile(0.99), totals.rows, totals.swaps,
		totals.failovers, totals.exhausted, totals.evictions)
	return totals, nil
}

// runClient is one synthetic deployment: tuner-driven simulated launches
// plus timed serving-path probes, all through a ring-routed FleetClient.
func runClient(idx int, peers []fleet.Peer, model string, desc app.Descriptor, problem string,
	size, steps, ranks int, sampleEvery, exploreEvery uint64,
	duration, poll, flush, healthEvery time.Duration, noise float64, seed uint64,
	predictLat, ingestLat *latencies, metMu *sync.Mutex, metRing **client.FleetClient) (t tally, err error) {
	// Named results: the health checker's eviction count is harvested in a
	// defer after the final return statement has run.
	f, err := client.NewFleet(fleet.PeerMap(peers), client.Options{})
	if err != nil {
		return t, err
	}
	metMu.Lock()
	if *metRing == nil {
		*metRing = f
	}
	metMu.Unlock()

	if healthEvery > 0 {
		h := fleet.NewHealth(peers, f.Ring(), fleet.HealthOptions{})
		stop := h.Start(healthEvery)
		defer func() { stop(); t.evictions = h.Evictions() }()
	}

	schema := features.TableI()
	ann := caliper.New()
	src := client.NewSource(f, schema, model, "")
	if err := src.Refresh(); err != nil {
		fmt.Fprintf(os.Stderr, "apollo-fleet: client %d starting degraded: %v\n", idx, err)
	}
	stopPoll := src.StartPolling(poll)
	defer stopPoll()

	rec := telemetry.NewRecorder(schema, ann, telemetry.Options{SampleEvery: sampleEvery})
	machine := platform.SandyBridgeNode()
	clk := platform.NewSimClock(machine, noise, seed)
	ctx := raja.NewSimContext(clk, desc.DefaultParams)
	tn := tuner.NewTuner(schema, ann, desc.DefaultParams).
		UseSource(src).
		UseTelemetry(rec).
		ExploreEvery(exploreEvery)
	timer := mpirt.NewTimer(tn, ann, ranks)
	ctx.Hooks = timer
	sim, err := desc.New(app.Config{Ctx: ctx, Ann: ann, Problem: problem, Size: size, Ranks: ranks})
	if err != nil {
		return t, err
	}

	// The upload loop is hand-rolled (not client.Uploader) so every
	// ingest round trip is timed: drain the recorder, post the batch
	// through the ring with failover, measure.
	post := func() {
		frame := rec.Drain(0)
		if frame == nil || frame.Len() == 0 {
			return
		}
		b := telemetry.NewBatch(model, frame)
		t0 := time.Now()
		err := f.PostTelemetry(b)
		ingestLat.add(time.Since(t0))
		t.posts++
		if err != nil {
			t.failedPosts++
		} else {
			t.rows += uint64(frame.Len())
		}
	}

	x := make([]float64, schema.Len())
	ni := schema.Index(features.NumIndices)
	swapsAtStart := src.Swaps()
	start := time.Now()
	lastFlush := start
	for step := 0; step < steps || time.Since(start) < duration; step++ {
		before := clk.NowNS()
		sim.Step()
		// Work the hooks saw is decomposed per rank; the remainder
		// partitions perfectly (same model as the scaling experiments).
		extra := clk.NowNS() - before - timer.PendingNS()
		if extra < 0 {
			extra = 0
		}
		timer.StepBarrier(extra)
		t.steps++

		// One serving-path probe per step: a live /predict against the
		// ring owner (failing over if it is gone).
		x[ni] = float64(int(64) << (step % 8))
		t0 := time.Now()
		_, err := f.Predict(model, x)
		predictLat.add(time.Since(t0))
		t.predicts++
		if err != nil {
			t.failedPredicts++
		}

		if time.Since(lastFlush) >= flush {
			post()
			lastFlush = time.Now()
		}
		if duration > 0 && step >= steps {
			// Past the minimum step count we only keep the loop alive for
			// -duration; pace to the service cadence instead of spinning.
			time.Sleep(flush / 4) //apollo:ctxok finite load loop paced to the flush cadence; exits via -duration
		}
	}
	post()

	t.decisions = int(tn.Decisions())
	t.swaps = src.Swaps() - swapsAtStart
	t.failovers = f.Failovers()
	t.exhausted = f.Exhausted()
	return t, nil
}
