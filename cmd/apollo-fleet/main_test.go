package main

import (
	"net/http/httptest"
	"testing"
	"time"

	"apollo/internal/core"
	"apollo/internal/dataset"
	"apollo/internal/features"
	"apollo/internal/raja"
	"apollo/internal/registry"
	"apollo/internal/server"
)

func testModel(t *testing.T) *core.Model {
	t.Helper()
	schema := features.TableI()
	frame := dataset.NewFrame(core.RecordColumns(schema)...)
	ni := schema.Index(features.NumIndices)
	for _, n := range []int{32, 256, 2048, 16384, 131072} {
		for _, pol := range []raja.Policy{raja.SeqExec, raja.OmpParallelForExec} {
			row := make([]float64, schema.Len()+3)
			row[ni] = float64(n)
			row[schema.Len()] = float64(pol)
			if pol == raja.SeqExec {
				row[schema.Len()+2] = float64(n) * 10
			} else {
				row[schema.Len()+2] = 8000 + float64(n)*10/8
			}
			frame.AddRow(row)
		}
	}
	set, err := core.Label(frame, schema, core.ExecutionPolicy)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Train(set, core.TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestHarnessEndToEnd runs a tiny fleet load: two synthetic clients
// against three in-process replicas, with the second replica killed
// mid-run. No predict may fail and the summary tallies must move.
func TestHarnessEndToEnd(t *testing.T) {
	m := testModel(t)
	spec := ""
	var victim *httptest.Server
	for _, id := range []string{"r1", "r2", "r3"} {
		reg := registry.New()
		if _, err := reg.Publish("lulesh/policy", m); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(server.New(reg, server.WithTelemetryDir(t.TempDir())).Handler())
		defer ts.Close()
		if victim == nil {
			victim = ts
		}
		if spec != "" {
			spec += ","
		}
		spec += id + "=" + ts.URL
	}

	go func() {
		time.Sleep(300 * time.Millisecond)
		victim.Close()
	}()
	totals, err := run(spec, "lulesh/policy", "LULESH", "sedov", 8, 2, 5, 2,
		1, 8, time.Second, 100*time.Millisecond, 50*time.Millisecond, 50*time.Millisecond,
		0.05, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if totals.failedPredicts != 0 {
		t.Errorf("%d predicts failed through the replica kill", totals.failedPredicts)
	}
	if totals.failedPosts != 0 || totals.exhausted != 0 {
		t.Errorf("telemetry dropped: failed_posts=%d exhausted=%d", totals.failedPosts, totals.exhausted)
	}
	if totals.predicts == 0 || totals.decisions == 0 || totals.rows == 0 {
		t.Errorf("no traffic recorded: %+v", totals)
	}
}

func TestHarnessRejectsBadFlags(t *testing.T) {
	if _, err := run("", "m", "LULESH", "sedov", 8, 1, 1, 1, 1, 8,
		0, time.Second, time.Second, 0, 0, 1, ""); err == nil {
		t.Fatal("missing -replicas accepted")
	}
	if _, err := run("a=http://x", "", "LULESH", "sedov", 8, 1, 1, 1, 1, 8,
		0, time.Second, time.Second, 0, 0, 1, ""); err == nil {
		t.Fatal("missing -model accepted")
	}
	if _, err := run("a=http://x", "m", "NoSuchApp", "sedov", 8, 1, 1, 1, 1, 8,
		0, time.Second, time.Second, 0, 0, 1, ""); err == nil {
		t.Fatal("unknown app accepted")
	}
}
