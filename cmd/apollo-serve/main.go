// Command apollo-serve is the Apollo model service daemon: a versioned,
// disk-backed model registry behind an HTTP JSON API. Training pipelines
// push retrained models to it (apollo-train -push), application processes
// fetch and hot-swap them through the client, and operators can drop
// model files straight into the registry directory — the polling watcher
// publishes them to every connected tuner without a restart.
//
//	apollo-serve -addr 127.0.0.1:8080 -dir ./models
//
//	PUT  /models/{name}   publish (bare model JSON or versioned envelope)
//	GET  /models/{name}   fetch current version (ETag conditional GET)
//	GET  /models          list models
//	POST /predict         evaluate: {"model":..., "x":[...]} |
//	                      {"batch":[[...],...]} | {"features":{name:v}}
//	GET  /healthz         liveness
//	GET  /metrics         Prometheus text format
//
// Fleet mode: -id names this replica and -peers lists the others
// (id=url pairs). The replica then polls its peers' model lists every
// -sync and pulls any strictly newer version, so a champion published on
// one replica converges on all of them with its version and content
// ETag intact.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"apollo/internal/fleet"
	"apollo/internal/flight"
	"apollo/internal/looptrace"
	"apollo/internal/registry"
	"apollo/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	dir := flag.String("dir", "apollo-models", "registry directory (versioned model files)")
	poll := flag.Duration("poll", 2*time.Second, "watcher poll interval for external model-file changes (0 disables)")
	telemetry := flag.String("telemetry", "", "telemetry spool directory; enables POST /telemetry ingestion")
	debugAddr := flag.String("debug-addr", "", "serve /debug/apollo/{flight,trace} and pprof on this separate address (empty disables)")
	id := flag.String("id", "", "fleet replica id (used to skip self in -peers)")
	peers := flag.String("peers", "", "fleet peers as comma-separated id=url pairs; enables model sync")
	sync := flag.Duration("sync", 2*time.Second, "fleet model-sync poll interval")
	loopJournal := flag.String("loop-journal", "", "directory for the closed-loop event journal; enables loop tracing and /debug/apollo/loop")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *addr, *dir, *telemetry, *debugAddr, *id, *peers, *loopJournal, *poll, *sync, nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "apollo-serve:", err)
		os.Exit(1)
	}
}

// run serves until ctx is canceled. ready and debugReady, if non-nil,
// are called with the bound listener addresses once each server is
// accepting connections (tests and port-0 wrappers use them to learn the
// actual ports).
func run(ctx context.Context, addr, dir, telemetryDir, debugAddr, id, peerSpec, loopJournal string,
	poll, sync time.Duration, ready, debugReady func(net.Addr)) error {
	reg, err := registry.Open(dir)
	if err != nil {
		return err
	}
	peers, err := fleet.ParsePeers(peerSpec)
	if err != nil {
		return err
	}
	// Operators hand every replica the same -peers list; each one skips
	// itself by -id so it never pulls its own publishes.
	if id != "" {
		kept := peers[:0]
		for _, p := range peers {
			if p.ID != id {
				kept = append(kept, p)
			}
		}
		peers = kept
	}
	var opts []server.Option
	if telemetryDir != "" {
		opts = append(opts, server.WithTelemetryDir(telemetryDir))
	}
	var tr *looptrace.Tracer
	if loopJournal != "" {
		actor := "serve"
		if id != "" {
			actor = "serve:" + id
		}
		tr = looptrace.New(actor, looptrace.Options{})
		if err := tr.OpenJournal(loopJournal); err != nil {
			return err
		}
		defer tr.Close()
		flushDone := tr.Start(ctx, time.Second)
		defer func() { <-flushDone }()
		opts = append(opts, server.WithLoopTrace(tr))
		fmt.Printf("apollo-serve: loop journal at %s\n", looptrace.JournalPath(loopJournal, actor))
	}
	srv := server.New(reg, opts...)
	defer srv.CloseSpools()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The resolved address line is machine-readable: smoke tests and
	// wrapper scripts parse it to find a port-0 listener.
	fmt.Printf("apollo-serve: listening on http://%s (registry %s, %d models)\n",
		ln.Addr(), dir, reg.Len())
	if ready != nil {
		ready(ln.Addr())
	}

	if debugAddr != "" {
		// The debug surface (flight recorder, pprof) lives on its own
		// listener so operators can firewall it separately from the API.
		dln, err := net.Listen("tcp", debugAddr)
		if err != nil {
			return err
		}
		defer dln.Close()
		fmt.Printf("apollo-serve: debug on http://%s/debug/apollo/flight\n", dln.Addr())
		if debugReady != nil {
			debugReady(dln.Addr())
		}
		dmux := flight.DebugMux(srv.Flight())
		looptrace.RegisterDebug(dmux, tr)
		go http.Serve(dln, dmux)
	}

	go reg.Watch(ctx, poll, func(n int) {
		srv.NoteReload(n)
		fmt.Printf("apollo-serve: hot-reloaded %d model(s) from %s\n", n, dir)
	})

	if len(peers) > 0 {
		sn := fleet.NewSyncer(reg, peers, fleet.SyncerOptions{
			Logf: func(format string, args ...any) {
				fmt.Printf("apollo-serve: "+format+"\n", args...)
			},
			Trace: tr,
		})
		fmt.Printf("apollo-serve: syncing models from %d peer(s) every %v\n", len(peers), sync)
		go func() {
			t := time.NewTicker(sync)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					// A pulled model is a hot reload from the fleet's point
					// of view: connected tuners pick it up on their next
					// conditional GET.
					if n := sn.SyncOnce(); n > 0 {
						srv.NoteReload(n)
					}
					sn.ExportMetrics(srv.Metrics())
				}
			}
		}()
	}

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Println("apollo-serve: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
