package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"apollo/internal/client"
	"apollo/internal/core"
	"apollo/internal/dataset"
	"apollo/internal/features"
	"apollo/internal/raja"
)

func trainTestModel(t *testing.T) *core.Model {
	t.Helper()
	schema := features.TableI()
	frame := dataset.NewFrame(core.RecordColumns(schema)...)
	ni := schema.Index(features.NumIndices)
	for _, n := range []int{16, 128, 1024, 8192, 65536} {
		for _, pol := range []raja.Policy{raja.SeqExec, raja.OmpParallelForExec} {
			row := make([]float64, schema.Len()+3)
			row[ni] = float64(n)
			row[schema.Len()] = float64(pol)
			if pol == raja.SeqExec {
				row[schema.Len()+2] = float64(n) * 10
			} else {
				row[schema.Len()+2] = 8000 + float64(n)*10/8
			}
			frame.AddRow(row)
		}
	}
	set, err := core.Label(frame, schema, core.ExecutionPolicy)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Train(set, core.TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestServeEndToEnd boots the daemon on a random port, pushes a model,
// exercises the whole HTTP surface, drops a file into the registry
// directory for the watcher to pick up, and shuts down cleanly.
func TestServeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	addrs := make(chan net.Addr, 1)
	debugAddrs := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, "127.0.0.1:0", dir, "", "127.0.0.1:0", "", "", "", 5*time.Millisecond, time.Second,
			func(a net.Addr) { addrs <- a }, func(a net.Addr) { debugAddrs <- a })
	}()
	var base string
	select {
	case a := <-addrs:
		base = "http://" + a.String()
	case err := <-errc:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	var debugBase string
	select {
	case a := <-debugAddrs:
		debugBase = "http://" + a.String()
	case <-time.After(10 * time.Second):
		t.Fatal("debug listener never became ready")
	}

	// Liveness.
	resp, err := http.Get(base + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	resp.Body.Close()

	// Push a model through the client (the apollo-train -push path).
	m := trainTestModel(t)
	c := client.New(base, client.Options{})
	if v, err := c.Push("serve/policy", m); err != nil || v != 1 {
		t.Fatalf("push: v=%d err=%v", v, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "serve", "policy.v1.json")); err != nil {
		t.Fatalf("model not persisted under the registry dir: %v", err)
	}

	// Predict through the HTTP API using the features-map form.
	body := strings.NewReader(`{"model":"serve/policy","features":{"num_indices":16}}`)
	resp, err = http.Post(base+"/predict", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var pr struct {
		Class int `json:"class"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if pr.Class != int(raja.SeqExec) {
		t.Errorf("predict class = %d, want seq", pr.Class)
	}

	// The watcher hot-loads a file dropped into the registry directory.
	dropped, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "dropped.v1.json"), dropped, 0o644); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := c.Fetch("dropped"); err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := c.Fetch("dropped"); err != nil {
		t.Fatalf("watcher never served the dropped model: %v", err)
	}

	// Metrics reflect the traffic.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"apollo_http_requests_total",
		"apollo_predictions_total",
		`apollo_model_version{model="serve/policy"} 1`,
		"apollo_model_reloads_total 1",
		"apollo_go_goroutines",
		"apollo_go_heap_alloc_bytes",
		"apollo_go_gc_cycles_total",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// The debug listener serves the flight recorder: the /predict above
	// was a cache miss, so one decision record must be on file, with its
	// trail explained against the model's schema.
	resp, err = http.Get(debugBase + "/debug/apollo/flight")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("flight endpoint: %v %v", resp, err)
	}
	var capture struct {
		Format  string `json:"format"`
		Emitted uint64 `json:"emitted"`
		Sites   []struct {
			Name string `json:"name"`
		} `json:"sites"`
		Records []struct {
			Site      string             `json:"site"`
			Predicted int                `json:"predicted"`
			Features  map[string]float64 `json:"features"`
			Path      []string           `json:"path"`
		} `json:"records"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&capture); err != nil {
		t.Fatalf("flight endpoint body: %v", err)
	}
	resp.Body.Close()
	if capture.Format != "apollo-flight-v1" || capture.Emitted == 0 {
		t.Fatalf("flight capture header wrong: %+v", capture)
	}
	foundPredict := false
	for _, rec := range capture.Records {
		if rec.Site == "serve/policy" && rec.Predicted == int(raja.SeqExec) &&
			rec.Features["num_indices"] == 16 && len(rec.Path) > 0 {
			foundPredict = true
		}
	}
	if !foundPredict {
		t.Errorf("no flight record for the /predict decision: %+v", capture.Records)
	}

	// Timed trace capture returns valid Chrome trace-event JSON.
	resp, err = http.Get(debugBase + "/debug/apollo/trace?sec=0")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("trace endpoint: %v %v", resp, err)
	}
	var traceEvents []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&traceEvents); err != nil {
		t.Fatalf("trace endpoint body not a trace JSON array: %v", err)
	}
	resp.Body.Close()
	if resp, err = http.Get(debugBase + "/debug/apollo/trace?sec=bogus"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bogus sec accepted: %d", resp.StatusCode)
		}
	}

	// pprof is live on the debug listener.
	resp, err = http.Get(debugBase + "/debug/pprof/cmdline")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof: %v %v", resp, err)
	}
	resp.Body.Close()

	// Clean shutdown on context cancel.
	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}

func TestServeRejectsBadListenAddr(t *testing.T) {
	err := run(context.Background(), "256.0.0.1:http", t.TempDir(), "", "", "", "", "", 0, time.Second, nil, nil)
	if err == nil {
		t.Fatal("bad listen address accepted")
	}
	_ = fmt.Sprint(err)
}
