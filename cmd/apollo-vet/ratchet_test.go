package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module for the ratchet to analyze.
func writeModule(t *testing.T, name string, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"),
		[]byte("module "+name+"\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name+".go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// cleanBaseline is a committed-baseline stand-in for a module with zero
// diagnostics: the raw -json stream of a clean run is one summary record.
const cleanBaseline = `{"summary":true,"diagnostics":0}` + "\n"

// TestVetDiffRatchet injects a synthetic diagnostic into a module with a
// clean baseline and asserts the ratchet script fails the run — the
// property CI relies on — then checks the converse clean pass.
func TestVetDiffRatchet(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run via scripts/vet_diff.sh")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	baseDir := t.TempDir()
	baseline := filepath.Join(baseDir, "baseline.json")
	if err := os.WriteFile(baseline, []byte(cleanBaseline), 0o644); err != nil {
		t.Fatal(err)
	}

	run := func(module string) (string, error) {
		cmd := exec.Command("bash", "scripts/vet_diff.sh", baseline, module)
		cmd.Dir = root
		out, err := cmd.CombinedOutput()
		return string(out), err
	}

	// A timeout-less http.Get is a netguard diagnostic with no waiver:
	// the regression must fail the ratchet.
	bad := writeModule(t, "ratchetbad", `package ratchetbad

import "net/http"

func Fetch(url string) (*http.Response, error) {
	return http.Get(url)
}
`)
	out, err := run(bad)
	if err == nil {
		t.Fatalf("ratchet passed a module with a new diagnostic:\n%s", out)
	}
	if !strings.Contains(out, "NEW diagnostics") || !strings.Contains(out, "netguard") {
		t.Fatalf("regression output does not identify the new diagnostic:\n%s", out)
	}

	// The converse: a clean module against the clean baseline passes.
	good := writeModule(t, "ratchetgood", `package ratchetgood

func Add(a, b int) int { return a + b }
`)
	out, err = run(good)
	if err != nil {
		t.Fatalf("ratchet failed a clean module: %v\n%s", err, out)
	}
	if !strings.Contains(out, "no new diagnostics") {
		t.Fatalf("clean pass missing confirmation line:\n%s", out)
	}
}
