// Command apollo-vet runs Apollo's project-specific static analyzers
// over the module: hotpath (annotated hot paths must not allocate, lock,
// or block), atomicalign (64-bit sync/atomic fields must be aligned on
// 32-bit targets), lockscope (no blocking work while a mutex is held),
// schemahash (feature schemas must match their golden fingerprints),
// lockorder (nested mutex acquisitions must follow declared
// //apollo:lockrank order and stay acyclic), goleak (spawned goroutines
// must have a guaranteed exit), detorder (map iteration must not feed
// serialization or hashing), and waiverdrift (waiver and blocking
// annotations must still be live).
//
// Usage:
//
//	apollo-vet [-analyzers hotpath,lockorder] [-json] [package-dir]
//
// The argument selects the module containing the packages to analyze
// (default "."); the whole module is always loaded so cross-package call
// chains resolve. Diagnostics print as file:line:col lines with the
// violating call chain — or, with -json, as one JSON object per line
// (file, line, col, analyzer, message, chain) for CI annotation
// renderers. A final "N diagnostics from M analyzers" summary goes to
// stderr on every path, including load failures. Any finding exits 1;
// load or usage errors exit 2.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"apollo/internal/analysis"
)

// jsonDiagnostic is the -json wire form of one finding.
type jsonDiagnostic struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Analyzer string   `json:"analyzer"`
	Message  string   `json:"message"`
	Chain    []string `json:"chain,omitempty"`
}

func main() {
	names := flag.String("analyzers", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit one JSON diagnostic per line instead of the human format")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: apollo-vet [flags] [dir]\n\n"+
			"Runs Apollo's static analyzers over the module containing dir.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *names != "" {
		var err error
		analyzers, err = analysis.ByName(*names)
		if err != nil {
			fatal(err, len(analysis.All()))
		}
	}
	summary := func(found int) {
		fmt.Fprintf(os.Stderr, "apollo-vet: %d diagnostics from %d analyzers\n", found, len(analyzers))
	}

	dir := "."
	if flag.NArg() > 0 {
		// Accept "./..." for familiarity with go vet: the module is
		// always analyzed as a whole.
		arg := flag.Arg(0)
		if arg != "./..." && arg != "..." {
			dir = arg
		}
	}
	root, err := analysis.FindModuleRoot(dir)
	if err != nil {
		fatal(err, len(analyzers))
	}
	prog, err := analysis.Load(root)
	if err != nil {
		fatal(err, len(analyzers))
	}
	diags := analysis.RunAll(prog, analyzers)
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		if *jsonOut {
			if err := enc.Encode(jsonDiagnostic{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
				Chain:    d.Chain,
			}); err != nil {
				fatal(err, len(analyzers))
			}
			continue
		}
		fmt.Println(d.String())
	}
	summary(len(diags))
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// fatal reports a driver error and still prints the summary line that
// CI log scrapers key on, then exits 2.
func fatal(err error, analyzers int) {
	fmt.Fprintln(os.Stderr, "apollo-vet:", err)
	fmt.Fprintf(os.Stderr, "apollo-vet: 0 diagnostics from %d analyzers\n", analyzers)
	os.Exit(2)
}
