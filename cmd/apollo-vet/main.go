// Command apollo-vet runs Apollo's project-specific static analyzers
// over the module: hotpath (annotated hot paths must not allocate, lock,
// or block), atomicalign (64-bit sync/atomic fields must be aligned on
// 32-bit targets), lockscope (no blocking work while a mutex is held),
// and schemahash (feature schemas must match their golden fingerprints).
//
// Usage:
//
//	apollo-vet [-analyzers hotpath,lockscope] [package-dir]
//
// The argument selects the module containing the packages to analyze
// (default "."); the whole module is always loaded so cross-package call
// chains resolve. Diagnostics print as file:line:col lines with the
// violating call chain, and any finding exits non-zero.
package main

import (
	"flag"
	"fmt"
	"os"

	"apollo/internal/analysis"
)

func main() {
	names := flag.String("analyzers", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: apollo-vet [flags] [dir]\n\n"+
			"Runs Apollo's static analyzers over the module containing dir.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *names != "" {
		var err error
		analyzers, err = analysis.ByName(*names)
		if err != nil {
			fatal(err)
		}
	}

	dir := "."
	if flag.NArg() > 0 {
		// Accept "./..." for familiarity with go vet: the module is
		// always analyzed as a whole.
		arg := flag.Arg(0)
		if arg != "./..." && arg != "..." {
			dir = arg
		}
	}
	root, err := analysis.FindModuleRoot(dir)
	if err != nil {
		fatal(err)
	}
	prog, err := analysis.Load(root)
	if err != nil {
		fatal(err)
	}
	diags := analysis.RunAll(prog, analyzers)
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "apollo-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "apollo-vet:", err)
	os.Exit(2)
}
