// Command apollo-vet runs Apollo's project-specific static analyzers
// over the module: hotpath (annotated hot paths must not allocate, lock,
// or block), atomicalign (64-bit sync/atomic fields must be aligned on
// 32-bit targets), lockscope (no blocking work while a mutex is held),
// schemahash (feature schemas must match their golden fingerprints),
// lockorder (nested mutex acquisitions must follow declared
// //apollo:lockrank order and stay acyclic), goleak (spawned goroutines
// must have a guaranteed exit), detorder (map iteration must not feed
// serialization or hashing), cowsafe (values published through an
// atomic.Pointer are frozen and Load results are read-only), pubinit
// (initialization must precede the publish, including through calls
// that mutate their argument), sharedcap (goroutine closures must not
// capture locals the spawner keeps writing), errsink (every error value
// must reach a sink — return, cold-path log, or metric), ctxflow
// (blocking operations reachable from serve roots must be cancellable),
// lifecycle (component goroutines must pair with a stop signal their
// Close/Stop provably fires and joins), netguard (outbound HTTP must
// carry deadlines and retry through jittered backoff), and waiverdrift
// (waiver and blocking annotations must still be live).
//
// Usage:
//
//	apollo-vet [-analyzers hotpath,lockorder] [-json] [-summary-out f] [package-dir]
//
// The argument selects the module containing the packages to analyze
// (default "."); the whole module is always loaded so cross-package call
// chains resolve. Diagnostics print as file:line:col lines with the
// violating call chain — or, with -json, as one JSON object per line
// (file, line, col, analyzer, message, chain) for CI annotation
// renderers, followed by one final machine-readable summary record
// ({"summary":true, ...}) carrying per-analyzer diagnostic counts and
// wall times, the number of live waivers, and the wall time of the run. -summary-out
// writes that same record to a file on any run that completes analysis,
// so CI can archive it as an artifact without scraping stdout. A final
// "N diagnostics from M analyzers" line goes to stderr on every path,
// including load failures. Any finding exits 1; load or usage errors
// exit 2.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"apollo/internal/analysis"
)

// jsonDiagnostic is the -json wire form of one finding.
type jsonDiagnostic struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Analyzer string   `json:"analyzer"`
	Message  string   `json:"message"`
	Chain    []string `json:"chain,omitempty"`
}

// jsonSummary is the final machine-readable record of one run: the
// shape archived by CI and recorded in results/BENCH_vet.json.
type jsonSummary struct {
	Summary     bool           `json:"summary"`
	Diagnostics int            `json:"diagnostics"`
	PerAnalyzer map[string]int `json:"analyzers"`
	// PerAnalyzerMS is each analyzer's own wall time; analyzers run
	// concurrently, so the entries overlap and do not sum to wall_ms.
	PerAnalyzerMS map[string]float64 `json:"analyzer_wall_ms"`
	WaiversUsed   int                `json:"waivers_used"`
	Packages      int                `json:"packages"`
	WallMS        float64            `json:"wall_ms"`
}

func main() {
	names := flag.String("analyzers", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit one JSON diagnostic per line plus a final summary record")
	summaryOut := flag.String("summary-out", "", "write the JSON summary record to this file")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: apollo-vet [flags] [dir]\n\n"+
			"Runs Apollo's static analyzers over the module containing dir.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *names != "" {
		var err error
		analyzers, err = analysis.ByName(*names)
		if err != nil {
			fatal(err, len(analysis.All()))
		}
	}
	summary := func(found int) {
		fmt.Fprintf(os.Stderr, "apollo-vet: %d diagnostics from %d analyzers\n", found, len(analyzers))
	}

	dir := "."
	if flag.NArg() > 0 {
		// Accept "./..." for familiarity with go vet: the module is
		// always analyzed as a whole.
		arg := flag.Arg(0)
		if arg != "./..." && arg != "..." {
			dir = arg
		}
	}
	start := time.Now()
	root, err := analysis.FindModuleRoot(dir)
	if err != nil {
		fatal(err, len(analyzers))
	}
	prog, err := analysis.Load(root)
	if err != nil {
		fatal(err, len(analyzers))
	}
	diags, stats := analysis.RunAllStats(prog, analyzers)
	wall := time.Since(start)

	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		if *jsonOut {
			if err := enc.Encode(jsonDiagnostic{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
				Chain:    d.Chain,
			}); err != nil {
				fatal(err, len(analyzers))
			}
			continue
		}
		fmt.Println(d.String())
	}
	rec := jsonSummary{
		Summary:       true,
		Diagnostics:   len(diags),
		PerAnalyzer:   stats.PerAnalyzer,
		PerAnalyzerMS: stats.PerAnalyzerMS,
		WaiversUsed:   stats.WaiversUsed,
		Packages:      len(prog.Packages),
		WallMS:        float64(wall.Microseconds()) / 1000,
	}
	if *jsonOut {
		if err := enc.Encode(rec); err != nil {
			fatal(err, len(analyzers))
		}
	}
	if *summaryOut != "" {
		b, err := json.MarshalIndent(rec, "", "  ")
		if err == nil {
			err = os.WriteFile(*summaryOut, append(b, '\n'), 0o644)
		}
		if err != nil {
			fatal(err, len(analyzers))
		}
	}
	summary(len(diags))
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// fatal reports a driver error and still prints the summary line that
// CI log scrapers key on, then exits 2.
func fatal(err error, analyzers int) {
	fmt.Fprintln(os.Stderr, "apollo-vet:", err)
	fmt.Fprintf(os.Stderr, "apollo-vet: 0 diagnostics from %d analyzers\n", analyzers)
	os.Exit(2)
}
