// Command apollo-record runs one of the proxy applications in recording
// mode and writes the training samples to a CSV file, one row per kernel
// launch with the Table I features, the parameters used, and the runtime.
//
// A full training sweep records one run per candidate parameter value:
//
//	apollo-record -app CleverLeaf -problem sedov -size 64 -policy seq_exec -out seq.csv
//	apollo-record -app CleverLeaf -problem sedov -size 64 -policy omp_parallel_for_exec -out omp.csv
//
// or, with -sweep, synthesizes the whole variant grid from the machine
// model in a single pass (see internal/harness.SweepRecorder).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"apollo/internal/app"
	"apollo/internal/caliper"
	"apollo/internal/dataset"
	"apollo/internal/features"
	"apollo/internal/harness"
	"apollo/internal/platform"
	"apollo/internal/raja"
	"apollo/internal/tuner"
)

func main() {
	appName := flag.String("app", "CleverLeaf", "application: LULESH, CleverLeaf, or ARES")
	problem := flag.String("problem", "sedov", "input deck")
	size := flag.Int("size", 64, "global problem size")
	steps := flag.Int("steps", 10, "timesteps to run")
	policy := flag.String("policy", "seq_exec", "execution policy to force (seq_exec or omp_parallel_for_exec)")
	chunk := flag.Int("chunk", 0, "schedule chunk size to force (0 = default)")
	sweep := flag.Bool("sweep", false, "record every variant of the training grid in one pass")
	noise := flag.Float64("noise", 0.08, "measurement noise amplitude")
	seed := flag.Uint64("seed", 1, "noise seed")
	out := flag.String("out", "samples.csv", "output CSV path")
	flag.Parse()

	if err := run(*appName, *problem, *size, *steps, *policy, *chunk, *sweep, *noise, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "apollo-record:", err)
		os.Exit(1)
	}
}

func run(appName, problem string, size, steps int, policy string, chunk int, sweep bool, noise float64, seed uint64, out string) error {
	var desc app.Descriptor
	found := false
	for _, d := range harness.Apps() {
		if d.Name == appName {
			desc, found = d, true
		}
	}
	if !found {
		return fmt.Errorf("unknown application %q", appName)
	}
	schema := features.TableI()
	ann := caliper.New()
	machine := platform.SandyBridgeNode()
	clk := platform.NewSimClock(machine, noise, seed)
	ctx := raja.NewSimContext(clk, desc.DefaultParams)

	var frame func() *dataset.Frame
	if sweep {
		rec := harness.NewSweepRecorder(schema, ann, machine, noise, seed)
		ctx.Hooks = rec
		frame = rec.Frame
	} else {
		pol, ok := raja.PolicyByName(policy)
		if !ok {
			return fmt.Errorf("unknown policy %q", policy)
		}
		rec := tuner.NewRecorder(schema, ann, raja.Params{Policy: pol, Chunk: chunk})
		ctx.Hooks = rec
		frame = rec.Frame
	}

	sim, err := desc.New(app.Config{Ctx: ctx, Ann: ann, Problem: problem, Size: size})
	if err != nil {
		return err
	}
	for i := 0; i < steps; i++ {
		sim.Step()
	}
	f := frame()
	if strings.HasSuffix(out, ".jsonl") {
		err = f.SaveJSONL(out)
	} else {
		err = f.SaveCSV(out)
	}
	if err != nil {
		return err
	}
	fmt.Printf("recorded %d samples from %s/%s size %d (%d steps) -> %s\n",
		f.Len(), appName, problem, size, steps, out)
	return nil
}
