package main

import (
	"path/filepath"
	"testing"

	"apollo/internal/dataset"
)

func TestRunRecordsCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "samples.csv")
	if err := run("LULESH", "sedov", 8, 2, "seq_exec", 0, false, 0.05, 1, out); err != nil {
		t.Fatal(err)
	}
	f, err := dataset.LoadCSV(out)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() == 0 {
		t.Fatal("no samples written")
	}
	if f.Col("num_indices") < 0 || f.Col("time_ns") < 0 {
		t.Error("expected feature and time columns")
	}
	// All rows must carry the forced policy.
	for i := 0; i < f.Len(); i++ {
		if f.At(i, "policy") != 0 { // seq_exec
			t.Fatalf("row %d policy = %g, want seq", i, f.At(i, "policy"))
		}
	}
}

func TestRunRecordsJSONL(t *testing.T) {
	out := filepath.Join(t.TempDir(), "samples.jsonl")
	if err := run("LULESH", "sedov", 8, 1, "omp_parallel_for_exec", 64, false, 0, 1, out); err != nil {
		t.Fatal(err)
	}
	f, err := dataset.LoadJSONL(out)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() == 0 {
		t.Fatal("no samples written")
	}
	if f.At(0, "chunk") != 64 {
		t.Error("forced chunk not recorded")
	}
}

func TestRunSweepCoversVariants(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sweep.csv")
	if err := run("LULESH", "sedov", 8, 1, "", 0, true, 0.05, 1, out); err != nil {
		t.Fatal(err)
	}
	f, err := dataset.LoadCSV(out)
	if err != nil {
		t.Fatal(err)
	}
	variants := map[[2]float64]bool{}
	for i := 0; i < f.Len(); i++ {
		variants[[2]float64{f.At(i, "policy"), f.At(i, "chunk")}] = true
	}
	if len(variants) != 13 {
		t.Errorf("sweep covered %d variants, want 13", len(variants))
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	out := filepath.Join(t.TempDir(), "x.csv")
	if err := run("NoSuchApp", "sedov", 8, 1, "seq_exec", 0, false, 0, 1, out); err == nil {
		t.Error("unknown app accepted")
	}
	if err := run("LULESH", "sedov", 8, 1, "cuda_exec", 0, false, 0, 1, out); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := run("LULESH", "nodeck", 8, 1, "seq_exec", 0, false, 0, 1, out); err == nil {
		t.Error("unknown problem accepted")
	}
}
