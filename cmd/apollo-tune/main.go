// Command apollo-tune runs a proxy application live against the model
// service — the deployed half of the closed loop. The tuner fetches the
// named policy model, decides every kernel launch through it, records
// sampled (features, parameters, runtime) telemetry, explores the
// non-chosen variant on a fixed cadence so the telemetry carries
// counterfactuals, and uploads batches to the service's spool. While it
// runs, it polls for retrained models and hot-swaps them mid-run.
//
//	apollo-tune -server http://127.0.0.1:8080 -model lulesh/policy \
//	    -app LULESH -problem sedov -size 16 -steps 50
//
// With -wait-swaps N the run keeps stepping (up to -max-steps) until the
// source has swapped N model versions in, so a smoke test can assert the
// full record -> retrain -> hot-swap cycle.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"apollo/internal/app"
	"apollo/internal/caliper"
	"apollo/internal/client"
	"apollo/internal/features"
	"apollo/internal/flight"
	"apollo/internal/harness"
	"apollo/internal/looptrace"
	"apollo/internal/platform"
	"apollo/internal/raja"
	"apollo/internal/telemetry"
	"apollo/internal/tuner"
)

func main() {
	serverURL := flag.String("server", "http://127.0.0.1:8080", "model service base URL")
	model := flag.String("model", "", "policy model name to tune with (required)")
	appName := flag.String("app", "LULESH", "application: LULESH, CleverLeaf, or ARES")
	problem := flag.String("problem", "sedov", "input deck")
	size := flag.Int("size", 16, "global problem size")
	steps := flag.Int("steps", 50, "timesteps to run")
	maxSteps := flag.Int("max-steps", 0, "hard timestep cap when -wait-swaps keeps the run alive (0 = 20x steps)")
	waitSwaps := flag.Int("wait-swaps", 0, "keep stepping until this many model swaps arrived (0 disables)")
	sampleEvery := flag.Uint64("sample-every", 1, "record one launch in this many (power of two)")
	exploreEvery := flag.Uint64("explore-every", 8, "flip the chosen policy on every n-th launch (0 disables)")
	poll := flag.Duration("poll", 500*time.Millisecond, "model source poll interval")
	flush := flag.Duration("flush", 500*time.Millisecond, "telemetry upload interval")
	noise := flag.Float64("noise", 0.05, "measurement noise amplitude")
	seed := flag.Uint64("seed", 1, "noise seed")
	debugAddr := flag.String("debug-addr", "", "serve the flight-recorder debug endpoints and pprof on this address (empty disables)")
	loopJournal := flag.String("loop-journal", "", "directory for the closed-loop event journal; enables loop tracing")
	flag.Parse()

	if err := run(*serverURL, *model, *appName, *problem, *size, *steps, *maxSteps, *waitSwaps,
		*sampleEvery, *exploreEvery, *poll, *flush, *noise, *seed, *debugAddr, *loopJournal); err != nil {
		fmt.Fprintln(os.Stderr, "apollo-tune:", err)
		os.Exit(1)
	}
}

func run(serverURL, model, appName, problem string, size, steps, maxSteps, waitSwaps int,
	sampleEvery, exploreEvery uint64, poll, flush time.Duration, noise float64, seed uint64,
	debugAddr, loopJournal string) error {
	if model == "" {
		return fmt.Errorf("-model is required")
	}
	var desc app.Descriptor
	found := false
	for _, d := range harness.Apps() {
		if d.Name == appName {
			desc, found = d, true
		}
	}
	if !found {
		return fmt.Errorf("unknown application %q", appName)
	}
	if maxSteps <= 0 {
		maxSteps = 20 * steps
	}

	schema := features.TableI()
	ann := caliper.New()
	c := client.New(serverURL, client.Options{})
	src := client.NewSource(c, schema, model, "")
	var lt *looptrace.Tracer
	if loopJournal != "" {
		lt = looptrace.New("tune", looptrace.Options{})
		if err := lt.OpenJournal(loopJournal); err != nil {
			return err
		}
		defer lt.Close()
		src.SetTrace(lt)
		fmt.Printf("apollo-tune: loop journal at %s\n", looptrace.JournalPath(loopJournal, "tune"))
	}
	if err := src.Refresh(); err != nil {
		// Degraded start is allowed: the tuner launches on base params
		// and picks the model up when the service appears.
		fmt.Fprintln(os.Stderr, "apollo-tune: starting degraded:", err)
	}
	stopPoll := src.StartPolling(poll)
	defer stopPoll()

	rec := telemetry.NewRecorder(schema, ann, telemetry.Options{SampleEvery: sampleEvery})
	up := client.NewUploader(c, model, rec, client.UploaderOptions{
		// Stamp every batch with the model version (and its loop ID) the
		// tuner is running, so the service can attribute ingested spools.
		Attribution: func() (int, string) {
			cached := c.Cached(model)
			if cached == nil {
				return 0, ""
			}
			loop := ""
			if cached.Lineage != nil {
				loop = cached.Lineage.LoopID
			}
			return cached.Version, loop
		},
	})
	upCtx, upCancel := context.WithCancel(context.Background())
	defer upCancel()
	upDone := up.Start(upCtx, flush)

	machine := platform.SandyBridgeNode()
	clk := platform.NewSimClock(machine, noise, seed)
	ctx := raja.NewSimContext(clk, desc.DefaultParams)
	tn := tuner.NewTuner(schema, ann, desc.DefaultParams).
		UseSource(src).
		UseTelemetry(rec).
		ExploreEvery(exploreEvery)
	ctx.Hooks = tn

	var fr *flight.Recorder
	if debugAddr != "" {
		fr = flight.New(flight.Options{FeatureNames: schema.Names()})
		tn.UseFlight(fr)
		ln, err := net.Listen("tcp", debugAddr)
		if err != nil {
			return err
		}
		defer ln.Close()
		fmt.Printf("apollo-tune: debug on http://%s/debug/apollo/flight\n", ln.Addr())
		go http.Serve(ln, flight.DebugMux(fr))
	}

	sim, err := desc.New(app.Config{Ctx: ctx, Ann: ann, Problem: problem, Size: size})
	if err != nil {
		return err
	}

	swapsAtStart := src.Swaps()
	ran := 0
	for ; ran < maxSteps; ran++ {
		if ran >= steps && (waitSwaps == 0 || int(src.Swaps()-swapsAtStart) >= waitSwaps) {
			break
		}
		sim.Step()
		if waitSwaps > 0 && ran >= steps {
			// The app's work is done; we are only waiting on the loop,
			// so pace the extra steps to the service cadence. The uploader
			// context doubles as the cancel signal for the wait.
			select {
			case <-upCtx.Done():
			case <-time.After(poll / 4):
			}
		}
	}

	upCancel()
	<-upDone
	fmt.Printf("apollo-tune: done steps=%d decisions=%d explored=%d seen=%d recorded=%d dropped=%d uploaded_rows=%d uploaded_batches=%d swaps=%d\n",
		ran, tn.Decisions(), tn.Explored(), rec.Seen(), rec.Recorded(), rec.Dropped(),
		up.Rows(), up.Batches(), src.Swaps()-swapsAtStart)
	if waitSwaps > 0 && int(src.Swaps()-swapsAtStart) < waitSwaps {
		return fmt.Errorf("run ended after %d steps with %d swaps, wanted %d",
			ran, src.Swaps()-swapsAtStart, waitSwaps)
	}
	return nil
}
