package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"apollo/internal/core"
	"apollo/internal/dataset"
	"apollo/internal/features"
	"apollo/internal/raja"
)

// writeTrainingCSVs fabricates two per-policy training files.
func writeTrainingCSVs(t *testing.T, dir string) (string, string) {
	t.Helper()
	schema := features.TableI()
	make1 := func(pol raja.Policy, name string) string {
		frame := dataset.NewFrame(core.RecordColumns(schema)...)
		ni := schema.Index(features.NumIndices)
		for _, n := range []int{16, 128, 1024, 8192, 65536} {
			row := make([]float64, schema.Len()+3)
			row[ni] = float64(n)
			row[schema.Len()] = float64(pol)
			if pol == raja.SeqExec {
				row[schema.Len()+2] = float64(n) * 10
			} else {
				row[schema.Len()+2] = 8000 + float64(n)*10/8
			}
			frame.AddRow(row)
		}
		path := filepath.Join(dir, name)
		if err := frame.SaveCSV(path); err != nil {
			t.Fatal(err)
		}
		return path
	}
	return make1(raja.SeqExec, "seq.csv"), make1(raja.OmpParallelForExec, "omp.csv")
}

func TestTrainProducesModelAndCode(t *testing.T) {
	dir := t.TempDir()
	seq, omp := writeTrainingCSVs(t, dir)
	modelPath := filepath.Join(dir, "model.json")
	genPath := filepath.Join(dir, "tuned.go")
	err := run(seq+","+omp, "execution_policy", 5, 15, 3, 1, modelPath, genPath, false, "", "")
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.LoadModel(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if m.Param != core.ExecutionPolicy || m.Schema.Len() != 5 {
		t.Errorf("model wrong: param=%v features=%d", m.Param, m.Schema.Len())
	}
	src, err := os.ReadFile(genPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "func ApolloBeginForall(") {
		t.Error("generated code missing decision function")
	}
}

func TestTrainDeckIndependent(t *testing.T) {
	dir := t.TempDir()
	seq, omp := writeTrainingCSVs(t, dir)
	modelPath := filepath.Join(dir, "model.json")
	if err := run(seq+","+omp, "policy", 0, 0, 0, 1, modelPath, "", true, "", ""); err != nil {
		t.Fatal(err)
	}
	m, err := core.LoadModel(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if m.Schema.Has(features.ProblemName) {
		t.Error("deck-independent model retains problem_name")
	}
}

func TestTrainRejectsBadInputs(t *testing.T) {
	if err := run("", "policy", 0, 0, 0, 1, "x.json", "", false, "", ""); err == nil {
		t.Error("missing -data accepted")
	}
	dir := t.TempDir()
	seq, _ := writeTrainingCSVs(t, dir)
	if err := run(seq, "warp_size", 0, 0, 0, 1, filepath.Join(dir, "m.json"), "", false, "", ""); err == nil {
		t.Error("unknown parameter accepted")
	}
	if err := run(filepath.Join(dir, "missing.csv"), "policy", 0, 0, 0, 1, "m.json", "", false, "", ""); err == nil {
		t.Error("missing file accepted")
	}
}
