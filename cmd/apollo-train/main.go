// Command apollo-train builds tuning models from recorded training data:
// it labels each unique feature vector with its fastest variant, fits a
// decision-tree classifier, reports cross-validation accuracy and feature
// importance, optionally reduces the model (top-k features, depth cap),
// and writes the model JSON — loadable by the tuner without recompiling
// the application — plus, optionally, the generated Go decision function.
//
//	apollo-train -data seq.csv,omp.csv -param execution_policy \
//	    -topk 5 -depth 15 -out policy.json -gen tuned.go
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"apollo/internal/client"
	"apollo/internal/codegen"
	"apollo/internal/core"
	"apollo/internal/dataset"
	"apollo/internal/dtree"
	"apollo/internal/features"
)

func main() {
	data := flag.String("data", "", "comma-separated training CSV files (required)")
	param := flag.String("param", "execution_policy", "parameter to model: execution_policy or chunk_size")
	topK := flag.Int("topk", 0, "reduce to the k most important features (0 = keep all)")
	depth := flag.Int("depth", 0, "cap tree depth (0 = unlimited)")
	folds := flag.Int("cv", 10, "cross-validation folds (0 = skip)")
	seed := flag.Uint64("seed", 1, "cross-validation seed")
	out := flag.String("out", "model.json", "output model path")
	gen := flag.String("gen", "", "also write a generated Go decision function to this path")
	dropDeck := flag.Bool("deck-independent", false, "exclude deck-specific features (problem_name)")
	push := flag.String("push", "", "also publish the model to a running apollo-serve at this base URL")
	pushName := flag.String("push-name", "", "registry name to publish under (default: the parameter name)")
	flag.Parse()

	if err := run(*data, *param, *topK, *depth, *folds, *seed, *out, *gen, *dropDeck, *push, *pushName); err != nil {
		fmt.Fprintln(os.Stderr, "apollo-train:", err)
		os.Exit(1)
	}
}

func run(data, param string, topK, depth, folds int, seed uint64, out, gen string, dropDeck bool, push, pushName string) error {
	if data == "" {
		return fmt.Errorf("-data is required")
	}
	var frame *dataset.Frame
	for _, path := range strings.Split(data, ",") {
		path = strings.TrimSpace(path)
		var f *dataset.Frame
		var err error
		if strings.HasSuffix(path, ".jsonl") {
			f, err = dataset.LoadJSONL(path)
		} else {
			f, err = dataset.LoadCSV(path)
		}
		if err != nil {
			return err
		}
		if frame == nil {
			frame = f
		} else {
			frame.Append(f)
		}
	}
	fmt.Printf("loaded %d samples\n", frame.Len())

	var p core.Parameter
	switch param {
	case "execution_policy", "policy":
		p = core.ExecutionPolicy
	case "chunk_size", "chunk":
		p = core.ChunkSize
	default:
		return fmt.Errorf("unknown parameter %q", param)
	}

	schema := features.TableI()
	if dropDeck {
		schema = schema.Without(features.ProblemName)
	}
	set, err := core.Label(frame, schema, p)
	if err != nil {
		return err
	}
	fmt.Printf("labeled %d unique launch configurations\n", set.Len())

	cfg := core.TrainConfig{}
	model, err := core.Train(set, cfg)
	if err != nil {
		return err
	}
	if topK > 0 || depth > 0 {
		k := topK
		if k == 0 {
			k = schema.Len()
		}
		model, err = model.Reduce(set, k, depth, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("reduced model: %d features, depth %d, %d nodes\n",
			model.Schema.Len(), model.Tree.Depth(), model.Tree.NumNodes())
	} else {
		fmt.Printf("model: %d features, depth %d, %d nodes\n",
			model.Schema.Len(), model.Tree.Depth(), model.Tree.NumNodes())
	}

	names, imps := model.FeatureRanking()
	fmt.Println("top features by importance:")
	for i := 0; i < 5 && i < len(names); i++ {
		fmt.Printf("  %d. %-16s %.3f\n", i+1, names[i], imps[i])
	}

	if folds > 1 {
		cvCfg := core.TrainConfig{Tree: dtree.Config{MaxDepth: depth}}
		cv, err := core.CrossValidate(set, folds, seed, cvCfg)
		if err != nil {
			return err
		}
		fmt.Printf("%d-fold cross-validation:\n%s", folds, cv.Report(p))
	}

	if err := model.Save(out); err != nil {
		return err
	}
	fmt.Printf("model written to %s\n", out)

	if gen != "" {
		src := codegen.Generate(model, "tuned", "ApolloBeginForall")
		if err := os.WriteFile(gen, []byte(src), 0o644); err != nil {
			return err
		}
		fmt.Printf("generated decision function written to %s\n", gen)
	}

	if push != "" {
		name := pushName
		if name == "" {
			name = p.String()
		}
		version, err := client.New(push, client.Options{}).Push(name, model)
		if err != nil {
			return err
		}
		fmt.Printf("model pushed to %s as %s v%d (schema %s)\n", push, name, version, model.SchemaHash())
	}
	return nil
}
