// Command apollo-demo runs the full Apollo workflow end to end on one
// application: record training runs (one per execution policy, as the
// paper's training procedure does), train and reduce a decision model,
// write it to disk, reload it, and compare a tuned run against the
// application's default configuration.
//
//	apollo-demo -app CleverLeaf -problem triple_pt -size 64
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"apollo/internal/app"
	"apollo/internal/caliper"
	"apollo/internal/core"
	"apollo/internal/dataset"
	"apollo/internal/features"
	"apollo/internal/harness"
	"apollo/internal/platform"
	"apollo/internal/raja"
	"apollo/internal/trace"
	"apollo/internal/tuner"
)

func main() {
	appName := flag.String("app", "CleverLeaf", "application: LULESH, CleverLeaf, or ARES")
	problem := flag.String("problem", "sedov", "input deck")
	size := flag.Int("size", 64, "global problem size")
	steps := flag.Int("steps", 12, "timesteps per run")
	dir := flag.String("dir", "", "working directory for artifacts (default: temp)")
	traceOut := flag.Bool("trace", false, "write a Chrome trace of the tuned run to <dir>/tuned-trace.json")
	flag.Parse()

	if err := run(*appName, *problem, *size, *steps, *dir, *traceOut); err != nil {
		fmt.Fprintln(os.Stderr, "apollo-demo:", err)
		os.Exit(1)
	}
}

func run(appName, problem string, size, steps int, dir string, traceOut bool) error {
	var desc app.Descriptor
	found := false
	for _, d := range harness.Apps() {
		if d.Name == appName {
			desc, found = d, true
		}
	}
	if !found {
		return fmt.Errorf("unknown application %q", appName)
	}
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "apollo-demo")
		if err != nil {
			return err
		}
		fmt.Printf("artifacts in %s\n", dir)
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	schema := features.TableI()
	machine := platform.SandyBridgeNode()

	// --- 1. Record: one run per execution policy. ---
	fmt.Printf("\n[1/3] recording %s/%s at size %d, %d steps per run\n", appName, problem, size, steps)
	all := dataset.NewFrame(core.RecordColumns(schema)...)
	for _, pol := range []raja.Policy{raja.SeqExec, raja.OmpParallelForExec} {
		ann := caliper.New()
		rec := tuner.NewRecorder(schema, ann, raja.Params{Policy: pol})
		clk := platform.NewSimClock(machine, 0.08, 3)
		ctx := raja.NewSimContext(clk, desc.DefaultParams)
		ctx.Hooks = rec
		sim, err := desc.New(app.Config{Ctx: ctx, Ann: ann, Problem: problem, Size: size})
		if err != nil {
			return err
		}
		for i := 0; i < steps; i++ {
			sim.Step()
		}
		all.Append(rec.Frame())
		fmt.Printf("  %-24s %6d samples\n", pol, rec.Samples())
	}
	csvPath := filepath.Join(dir, "training.csv")
	if err := all.SaveCSV(csvPath); err != nil {
		return err
	}

	// --- 2. Train + reduce + persist. ---
	fmt.Printf("\n[2/3] training the execution-policy model\n")
	set, err := core.Label(all, schema, core.ExecutionPolicy)
	if err != nil {
		return err
	}
	full, err := core.Train(set, core.TrainConfig{})
	if err != nil {
		return err
	}
	model, err := full.Reduce(set, 5, 15, core.TrainConfig{})
	if err != nil {
		return err
	}
	cv, err := core.CrossValidate(set, 10, 1, core.TrainConfig{})
	if err != nil {
		return err
	}
	names, _ := model.FeatureRanking()
	modelPath := filepath.Join(dir, "policy-model.json")
	if err := model.Save(modelPath); err != nil {
		return err
	}
	fmt.Printf("  %d unique launch configs; 10-fold CV accuracy %.0f%%\n", set.Len(), cv.MeanAccuracy*100)
	fmt.Printf("  reduced to features %v, depth %d; saved to %s\n", names, model.Tree.Depth(), modelPath)

	// --- 3. Tune: reload the model and compare against the default. ---
	fmt.Printf("\n[3/3] tuned run vs default\n")
	loaded, err := core.LoadModel(modelPath)
	if err != nil {
		return err
	}
	timed := func(hooks func(ann *caliper.Annotations) raja.Hooks) (float64, error) {
		ann := caliper.New()
		clk := platform.NewSimClock(machine, 0, 0)
		ctx := raja.NewSimContext(clk, desc.DefaultParams)
		ctx.Hooks = hooks(ann)
		sim, err := desc.New(app.Config{Ctx: ctx, Ann: ann, Problem: problem, Size: size})
		if err != nil {
			return 0, err
		}
		for i := 0; i < steps; i++ {
			sim.Step()
		}
		return clk.NowNS(), nil
	}
	def, err := timed(func(*caliper.Annotations) raja.Hooks {
		if desc.NewDefaultHooks != nil {
			return desc.NewDefaultHooks()
		}
		return nil
	})
	if err != nil {
		return err
	}
	var tracer *trace.Tracer
	tuned, err := timed(func(ann *caliper.Annotations) raja.Hooks {
		tn := tuner.NewTuner(schema, ann, desc.DefaultParams).UsePolicyModel(loaded)
		if !traceOut {
			return tn
		}
		tracer = trace.New(tn, 0)
		return tracer
	})
	if err != nil {
		return err
	}
	fmt.Printf("  default: %8.2f ms\n", def/1e6)
	fmt.Printf("  apollo:  %8.2f ms\n", tuned/1e6)
	fmt.Printf("  speedup: %.2fx\n", def/tuned)

	if tracer != nil {
		tracePath := filepath.Join(dir, "tuned-trace.json")
		if err := trace.SaveChromeTrace(tracePath, tracer.Events()); err != nil {
			return err
		}
		fmt.Printf("\nChrome trace of %d launches written to %s\n", tracer.Len(), tracePath)
		fmt.Println("top kernels by total time (seq/par decisions):")
		for i, s := range trace.Summarize(tracer.Events()) {
			if i >= 6 {
				break
			}
			fmt.Printf("  %-36s %8.2fms  %d launches (%d seq / %d par)\n",
				s.Kernel, s.TotalNS/1e6, s.Launches, s.SeqCount, s.ParCount)
		}
	}
	return nil
}
