package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestDemoEndToEnd(t *testing.T) {
	dir := t.TempDir()
	if err := run("LULESH", "sedov", 8, 3, dir, true); err != nil {
		t.Fatal(err)
	}
	for _, artifact := range []string{"training.csv", "policy-model.json", "tuned-trace.json"} {
		if _, err := os.Stat(filepath.Join(dir, artifact)); err != nil {
			t.Errorf("artifact %s missing: %v", artifact, err)
		}
	}
}

func TestDemoRejectsUnknownApp(t *testing.T) {
	if err := run("NoSuchApp", "sedov", 8, 1, t.TempDir(), false); err == nil {
		t.Error("unknown app accepted")
	}
}
