package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"time"

	"apollo/internal/core"
	"apollo/internal/ctree"
	"apollo/internal/dtree"
	"apollo/internal/registry"
)

// inspectedModel is one model gathered from a registry directory, a live
// service, or a file, ready for reporting and verification.
type inspectedModel struct {
	Name    string
	Version int
	Model   *core.Model
}

// runModelsCmd implements `apollo-inspect models`: the compiled-model
// report (per model: node counts, flat-array bytes, specialization kind)
// over a registry directory, a live model service, or a single model
// file. With -verify it differentially checks the compiled decision path
// against the interpreted tree on threshold-boundary and random vectors
// — and, for -url, against the live /predict endpoint — exiting non-zero
// on any disagreement.
func runModelsCmd(args []string) error {
	fs := flag.NewFlagSet("models", flag.ContinueOnError)
	dir := fs.String("dir", "", "registry directory (as served by apollo-serve -dir)")
	url := fs.String("url", "", "model service base URL (e.g. http://127.0.0.1:8080)")
	model := fs.String("model", "", "single model or envelope JSON file")
	verify := fs.Bool("verify", false, "differentially verify compiled against interpreted predictions")
	vectors := fs.Int("vectors", 256, "random probe vectors per model for -verify (boundary probes are always added)")
	timeout := fs.Duration("timeout", 3*time.Second, "HTTP timeout for -url fetches")
	if err := fs.Parse(args); err != nil {
		return err
	}
	set := 0
	for _, s := range []string{*dir, *url, *model} {
		if s != "" {
			set++
		}
	}
	if set != 1 {
		return fmt.Errorf("set exactly one of -dir, -url, -model")
	}

	hc := &http.Client{Timeout: *timeout}
	var models []inspectedModel
	var err error
	switch {
	case *dir != "":
		models, err = modelsFromDir(*dir)
	case *url != "":
		models, err = modelsFromURL(hc, *url)
	default:
		models, err = modelsFromFile(*model)
	}
	if err != nil {
		return err
	}
	if len(models) == 0 {
		return fmt.Errorf("no models found")
	}
	sort.Slice(models, func(i, j int) bool { return models[i].Name < models[j].Name })

	fmt.Printf("%-32s %7s  %-16s %-14s %6s %6s %6s %10s\n",
		"model", "version", "parameter", "kind", "nodes", "leaves", "depth", "flat bytes")
	compiled := make([]*ctree.Tree, len(models))
	for i, im := range models {
		ct, err := ctree.Compile(im.Model.Tree)
		if err != nil {
			return fmt.Errorf("compiling %s: %w", im.Name, err)
		}
		compiled[i] = ct
		st := ct.Stats()
		fmt.Printf("%-32s %7d  %-16s %-14s %6d %6d %6d %10d\n",
			im.Name, im.Version, im.Model.Param.String(), st.Kind, st.Nodes, st.Leaves, st.Depth, st.FlatBytes)
	}

	if !*verify {
		return nil
	}
	fmt.Println()
	for i, im := range models {
		probes := probeVectors(im.Model, *vectors)
		if err := verifyCompiled(im.Model, compiled[i], probes); err != nil {
			return fmt.Errorf("model %s: %w", im.Name, err)
		}
		checked := len(probes)
		if *url != "" {
			n, err := verifyLive(hc, *url, im.Name, im.Model, probes)
			if err != nil {
				return fmt.Errorf("model %s: %w", im.Name, err)
			}
			checked += n
		}
		fmt.Printf("%s: compiled == interpreted on %d vectors\n", im.Name, checked)
	}
	return nil
}

func modelsFromDir(dir string) ([]inspectedModel, error) {
	reg, err := registry.Open(dir)
	if err != nil {
		return nil, err
	}
	var out []inspectedModel
	for _, name := range reg.Names() {
		if e, ok := reg.Get(name); ok {
			out = append(out, inspectedModel{Name: e.Name, Version: e.Version, Model: e.Model})
		}
	}
	return out, nil
}

func modelsFromURL(hc *http.Client, base string) ([]inspectedModel, error) {
	data, err := httpGet(hc, base+"/models")
	if err != nil {
		return nil, err
	}
	var list struct {
		Models []struct {
			Name string `json:"name"`
		} `json:"models"`
	}
	if err := json.Unmarshal(data, &list); err != nil {
		return nil, fmt.Errorf("decoding model list: %w", err)
	}
	var out []inspectedModel
	for _, mi := range list.Models {
		data, err := httpGet(hc, base+"/models/"+mi.Name)
		if err != nil {
			return nil, err
		}
		env, err := core.ParseModelOrEnvelope(data)
		if err != nil {
			return nil, fmt.Errorf("model %s: %w", mi.Name, err)
		}
		out = append(out, inspectedModel{Name: mi.Name, Version: env.Version, Model: env.Model})
	}
	return out, nil
}

func modelsFromFile(path string) ([]inspectedModel, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	env, err := core.ParseModelOrEnvelope(data)
	if err != nil {
		return nil, err
	}
	name := env.Name
	if name == "" {
		name = path
	}
	return []inspectedModel{{Name: name, Version: env.Version, Model: env.Model}}, nil
}

func httpGet(hc *http.Client, url string) ([]byte, error) {
	resp, err := hc.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// probeVectors builds the differential corpus for one model: for every
// split threshold in the tree, vectors probing the exact boundary and
// one ULP to either side (where `<=` versus `<` mistakes live), plus
// NaN and infinity probes and a deterministic random sweep.
func probeVectors(m *core.Model, random int) [][]float64 {
	width := m.Schema.Len()
	if width < m.Tree.NumFeatures {
		width = m.Tree.NumFeatures
	}
	var probes [][]float64
	vec := func() []float64 { return make([]float64, width) }

	var walk func(n *dtree.Node)
	walk = func(n *dtree.Node) {
		if n == nil || n.Feature < 0 {
			return
		}
		for _, v := range []float64{
			n.Threshold,
			math.Nextafter(n.Threshold, math.Inf(1)),
			math.Nextafter(n.Threshold, math.Inf(-1)),
			math.NaN(),
		} {
			x := vec()
			x[n.Feature] = v
			probes = append(probes, x)
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(m.Tree.Root)

	inf := vec()
	ninf := vec()
	for i := range inf {
		inf[i] = math.Inf(1)
		ninf[i] = math.Inf(-1)
	}
	probes = append(probes, vec(), inf, ninf)

	rng := rand.New(rand.NewSource(1))
	for i := 0; i < random; i++ {
		x := vec()
		for j := range x {
			x[j] = math.Trunc(rng.NormFloat64() * 1e4)
		}
		probes = append(probes, x)
	}
	return probes
}

// verifyCompiled checks every probe through all compiled entry points —
// flat walk, specialized closure, and batch — against the interpreted
// tree.
func verifyCompiled(m *core.Model, ct *ctree.Tree, probes [][]float64) error {
	fn := ct.Func()
	batch := make([]int, len(probes))
	ct.PredictN(probes, batch)
	for i, x := range probes {
		want := m.Tree.Predict(x)
		if got := ct.Predict(x); got != want {
			return fmt.Errorf("vector %d: compiled Predict=%d, interpreted=%d (x=%v)", i, got, want, x)
		}
		if got := fn(x); got != want {
			return fmt.Errorf("vector %d: specialized Func=%d, interpreted=%d (x=%v)", i, got, want, x)
		}
		if batch[i] != want {
			return fmt.Errorf("vector %d: batched PredictN=%d, interpreted=%d (x=%v)", i, batch[i], want, x)
		}
	}
	return nil
}

// verifyLive replays finite probes against the live /predict endpoint,
// one batch request plus a handful of single-vector requests, and
// compares with the local interpreted answers. It returns how many
// vectors it checked.
func verifyLive(hc *http.Client, base, name string, m *core.Model, probes [][]float64) (int, error) {
	want := m.Schema.Len()
	var finite [][]float64
	for _, x := range probes {
		if len(x) != want {
			continue // tree wider than schema; not servable
		}
		ok := true
		for _, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				ok = false
				break
			}
		}
		if ok {
			finite = append(finite, x)
		}
	}
	if len(finite) == 0 {
		return 0, nil
	}
	post := func(req any) (map[string]any, error) {
		body, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		resp, err := hc.Post(base+"/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, fmt.Errorf("POST /predict: reading response: %w", err)
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("POST /predict: %s: %s", resp.Status, data)
		}
		var out map[string]any
		if err := json.Unmarshal(data, &out); err != nil {
			return nil, err
		}
		return out, nil
	}

	out, err := post(map[string]any{"model": name, "batch": finite})
	if err != nil {
		return 0, err
	}
	classes, _ := out["classes"].([]any)
	if len(classes) != len(finite) {
		return 0, fmt.Errorf("live batch returned %d classes for %d vectors", len(classes), len(finite))
	}
	for i, c := range classes {
		if want := m.Tree.Predict(finite[i]); int(c.(float64)) != want {
			return 0, fmt.Errorf("vector %d: live batch class=%v, interpreted=%d", i, c, want)
		}
	}
	singles := len(finite)
	if singles > 8 {
		singles = 8
	}
	for i := 0; i < singles; i++ {
		out, err := post(map[string]any{"model": name, "x": finite[i]})
		if err != nil {
			return 0, err
		}
		class, _ := out["class"].(float64)
		if want := m.Tree.Predict(finite[i]); int(class) != want {
			return 0, fmt.Errorf("vector %d: live class=%g, interpreted=%d", i, class, want)
		}
	}
	return len(finite) + singles, nil
}
