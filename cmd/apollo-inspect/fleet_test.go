package main

import (
	"net/http/httptest"
	"testing"

	"apollo/internal/core"
	"apollo/internal/dataset"
	"apollo/internal/features"
	"apollo/internal/raja"
	"apollo/internal/registry"
	"apollo/internal/server"
)

func fleetModel(t *testing.T, scale float64) *core.Model {
	t.Helper()
	schema := features.TableI()
	frame := dataset.NewFrame(core.RecordColumns(schema)...)
	ni := schema.Index(features.NumIndices)
	for _, n := range []int{32, 2048, 131072} {
		for _, pol := range []raja.Policy{raja.SeqExec, raja.OmpParallelForExec} {
			row := make([]float64, schema.Len()+3)
			row[ni] = float64(n)
			row[schema.Len()] = float64(pol)
			if pol == raja.SeqExec {
				row[schema.Len()+2] = float64(n) * 10 * scale
			} else {
				row[schema.Len()+2] = 8000 + float64(n)*scale
			}
			frame.AddRow(row)
		}
	}
	set, err := core.Label(frame, schema, core.ExecutionPolicy)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Train(set, core.TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFleetCmdConvergenceVerdict(t *testing.T) {
	regA, regB := registry.New(), registry.New()
	tsA := httptest.NewServer(server.New(regA).Handler())
	defer tsA.Close()
	tsB := httptest.NewServer(server.New(regB).Handler())
	defer tsB.Close()
	spec := "-replicas=a=" + tsA.URL + ",b=" + tsB.URL

	m := fleetModel(t, 1)
	if _, err := regA.Publish("lulesh/policy", m); err != nil {
		t.Fatal(err)
	}
	if _, err := regB.Publish("lulesh/policy", m); err != nil {
		t.Fatal(err)
	}
	// Same version, same deterministic envelope: converged.
	if err := runFleetCmd([]string{spec}); err != nil {
		t.Fatalf("converged fleet judged broken: %v", err)
	}

	// Independent different publish on one replica: diverged.
	if _, err := regB.Publish("lulesh/policy", fleetModel(t, 5)); err != nil {
		t.Fatal(err)
	}
	if err := runFleetCmd([]string{spec}); err == nil {
		t.Fatal("diverged fleet judged converged")
	}

	// A dead replica also fails the verdict.
	tsB.Close()
	if err := runFleetCmd([]string{spec}); err == nil {
		t.Fatal("dead replica judged healthy")
	}

	if err := runFleetCmd([]string{"-replicas="}); err == nil {
		t.Fatal("missing -replicas accepted")
	}
}
