package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"apollo/internal/ctree"
	"apollo/internal/dtree"
	"apollo/internal/flight"
)

// flightCapture mirrors the apollo-flight-v1 JSON the debug endpoint
// serves (internal/flight.Capture), decoding only what the analyses
// need.
type flightCapture struct {
	Format  string         `json:"format"`
	Emitted uint64         `json:"emitted"`
	Dropped uint64         `json:"dropped"`
	Sites   []flightSite   `json:"sites"`
	Records []flightRecord `json:"records"`
}

// flightSite carries the per-site compiled-tree layout a capture embeds
// for sites that record compact offset trails.
type flightSite struct {
	ID       string        `json:"id"`
	Name     string        `json:"name"`
	Features []string      `json:"features"`
	CTree    *ctree.Layout `json:"ctree"`
	Src      []int32       `json:"src"`
}

type flightRecord struct {
	Seq          uint64             `json:"seq"`
	Site         string             `json:"site"`
	SiteID       string             `json:"site_id"`
	Iterations   int64              `json:"iterations"`
	Policy       int                `json:"policy"`
	Chunk        int                `json:"chunk"`
	Predicted    int                `json:"predicted"`
	Explored     bool               `json:"explored"`
	PredictedNS  float64            `json:"predicted_ns"`
	ObservedNS   float64            `json:"observed_ns"`
	Features     map[string]float64 `json:"features"`
	Path         []string           `json:"path"`
	TrailOffsets []int32            `json:"trail_offsets"`
}

// siteName returns the display name of the record's site.
func (r *flightRecord) siteName() string {
	if r.Site != "" {
		return r.Site
	}
	return r.SiteID
}

// variant labels the executed parameter assignment.
func (r *flightRecord) variant() string {
	if r.Chunk != 0 {
		return fmt.Sprintf("class=%d/chunk=%d", r.Policy, r.Chunk)
	}
	return fmt.Sprintf("class=%d", r.Policy)
}

// regionKey groups records that decided the same input: same site, same
// feature snapshot. Exploration gives such a group observations of more
// than one variant, which is what makes the retrospective comparison
// possible.
func (r *flightRecord) regionKey() string {
	names := make([]string, 0, len(r.Features))
	for name := range r.Features {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(r.siteName())
	for _, name := range names {
		if v := r.Features[name]; v != 0 {
			fmt.Fprintf(&b, " %s=%g", name, v)
		}
	}
	return b.String()
}

// runFlightCmd implements `apollo-inspect flight`: the misprediction
// table (chosen vs retrospectively best variant per region) and the
// decision-path histogram of a flight capture.
func runFlightCmd(args []string) error {
	fs := flag.NewFlagSet("flight", flag.ContinueOnError)
	in := fs.String("in", "", "flight capture JSON file (apollo-flight-v1)")
	url := fs.String("url", "", "fetch the capture from a live /debug/apollo/flight endpoint")
	top := fs.Int("top", 20, "rows to print per table")
	jsonOut := fs.Bool("json", false, "emit the analysis as JSON instead of tables")
	timeout := fs.Duration("timeout", 3*time.Second, "HTTP timeout for -url fetches")
	if err := fs.Parse(args); err != nil {
		return err
	}
	data, err := readInput(*in, *url, *timeout)
	if err != nil {
		return err
	}
	var c flightCapture
	if err := json.Unmarshal(data, &c); err != nil {
		return fmt.Errorf("decoding capture: %w", err)
	}
	if c.Format != "apollo-flight-v1" {
		return fmt.Errorf("not a flight capture (format %q, want apollo-flight-v1)", c.Format)
	}
	decodeOffsetPaths(&c)
	if *jsonOut {
		return writeFlightJSON(os.Stdout, &c)
	}
	fmt.Printf("flight capture: %d records retained, %d emitted, %d dropped\n",
		len(c.Records), c.Emitted, c.Dropped)
	writeMispredictTable(os.Stdout, c.Records, *top)
	writePathHistogram(os.Stdout, c.Records, *top)
	return nil
}

// writeFlightJSON emits the flight analysis — capture counters plus the
// full misprediction table — as one JSON object, so scripts can assert
// on regret numbers without scraping the text tables.
func writeFlightJSON(w io.Writer, c *flightCapture) error {
	type rowJSON struct {
		Region       string  `json:"region"`
		Launches     int     `json:"launches"`
		Chosen       string  `json:"chosen"`
		ChosenMeanNS float64 `json:"chosen_mean_ns"`
		Best         string  `json:"best"`
		BestMeanNS   float64 `json:"best_mean_ns"`
		Regret       float64 `json:"regret"`
		Mispredicted bool    `json:"mispredicted"`
	}
	rows := mispredictTable(c.Records)
	out := struct {
		Format      string    `json:"format"`
		Records     int       `json:"records"`
		Emitted     uint64    `json:"emitted"`
		Dropped     uint64    `json:"dropped"`
		Regions     int       `json:"comparable_regions"`
		Mispredicts []rowJSON `json:"mispredicts"`
	}{Format: "apollo-flight-report-v1", Records: len(c.Records),
		Emitted: c.Emitted, Dropped: c.Dropped, Regions: len(rows)}
	for _, r := range rows {
		out.Mispredicts = append(out.Mispredicts, rowJSON{
			Region: r.region, Launches: r.launches,
			Chosen: r.chosen, ChosenMeanNS: r.chosenMeanNS,
			Best: r.best, BestMeanNS: r.bestMeanNS,
			Regret: r.regret, Mispredicted: r.chosen != r.best,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// decodeOffsetPaths fills in Path for records that carry only a compact
// offset trail, using the compiled-tree layout the capture embeds per
// site. Captures taken while the site's decoder was registered arrive
// with Path already rendered; this is the offline fallback for the raw
// form. Records whose site embeds no layout are left as-is.
func decodeOffsetPaths(c *flightCapture) {
	type siteDecoder struct {
		tree     *ctree.Tree
		src      []int32
		features []string
	}
	decoders := map[string]*siteDecoder{}
	for _, s := range c.Sites {
		if s.CTree == nil {
			continue
		}
		t, err := ctree.FromLayout(s.CTree)
		if err != nil {
			continue // foreign or corrupt layout; leave raw offsets visible
		}
		decoders[s.ID] = &siteDecoder{tree: t, src: s.Src, features: s.Features}
	}
	var steps [flight.MaxTrail]dtree.TrailStep
	for i := range c.Records {
		r := &c.Records[i]
		if len(r.Path) > 0 || len(r.TrailOffsets) == 0 {
			continue
		}
		d := decoders[r.SiteID]
		if d == nil {
			continue
		}
		// Rebuild the source-layout feature slice from the named map.
		x := make([]float64, len(d.features))
		for j, name := range d.features {
			if v, ok := r.Features[name]; ok {
				x[j] = v
			} else {
				x[j] = math.NaN()
			}
		}
		n := d.tree.DecodeOffsets(r.TrailOffsets, d.src, x, steps[:])
		r.Path = flight.ExplainTrail(steps[:n], d.features)
	}
}

// readInput loads the capture from a file or a live endpoint.
func readInput(in, url string, timeout time.Duration) ([]byte, error) {
	switch {
	case in != "" && url != "":
		return nil, fmt.Errorf("set only one of -in and -url")
	case in != "":
		return os.ReadFile(in)
	case url != "":
		hc := &http.Client{Timeout: timeout}
		resp, err := hc.Get(url)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
		}
		return io.ReadAll(resp.Body)
	}
	return nil, fmt.Errorf("set -in or -url")
}

// variantStat accumulates one region's observations of one variant.
type variantStat struct {
	count  int
	total  float64
	chosen int // times this variant was the (non-explored) model choice
}

// regionStat is one (site, feature snapshot) group.
type regionStat struct {
	key      string
	launches int
	variants map[string]*variantStat
}

// mean observed runtime of a variant.
func (v *variantStat) mean() float64 { return v.total / float64(v.count) }

// mispredictRow is one line of the misprediction table.
type mispredictRow struct {
	region       string
	launches     int
	chosen       string
	chosenMeanNS float64
	best         string
	bestMeanNS   float64
	regret       float64
}

// mispredictTable compares, per region, the variant the model chose
// against the retrospectively fastest observed variant. Regions with
// observations of only one variant cannot be judged and are skipped —
// exploration (tuner -explore-every) is what produces the
// counterfactual observations this table needs.
func mispredictTable(recs []flightRecord) []mispredictRow {
	regions := map[string]*regionStat{}
	var order []string
	for i := range recs {
		r := &recs[i]
		key := r.regionKey()
		rs := regions[key]
		if rs == nil {
			rs = &regionStat{key: key, variants: map[string]*variantStat{}}
			regions[key] = rs
			order = append(order, key)
		}
		rs.launches++
		v := rs.variants[r.variant()]
		if v == nil {
			v = &variantStat{}
			rs.variants[r.variant()] = v
		}
		v.count++
		v.total += r.ObservedNS
		if !r.Explored {
			v.chosen++
		}
	}
	var rows []mispredictRow
	for _, key := range order {
		rs := regions[key]
		if len(rs.variants) < 2 {
			continue
		}
		var chosenName, bestName string
		var chosenStat, bestStat *variantStat
		names := make([]string, 0, len(rs.variants))
		for name := range rs.variants {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			v := rs.variants[name]
			if chosenStat == nil || v.chosen > chosenStat.chosen {
				chosenName, chosenStat = name, v
			}
			if bestStat == nil || v.mean() < bestStat.mean() {
				bestName, bestStat = name, v
			}
		}
		row := mispredictRow{
			region:       rs.key,
			launches:     rs.launches,
			chosen:       chosenName,
			chosenMeanNS: chosenStat.mean(),
			best:         bestName,
			bestMeanNS:   bestStat.mean(),
		}
		if row.bestMeanNS > 0 {
			row.regret = (row.chosenMeanNS - row.bestMeanNS) / row.bestMeanNS
		}
		rows = append(rows, row)
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].regret > rows[j].regret })
	return rows
}

func writeMispredictTable(w io.Writer, recs []flightRecord, top int) {
	rows := mispredictTable(recs)
	fmt.Fprintf(w, "\nmisprediction table (chosen vs retrospectively best, %d comparable regions):\n", len(rows))
	if len(rows) == 0 {
		fmt.Fprintln(w, "  (no region observed under more than one variant; enable exploration)")
		return
	}
	fmt.Fprintf(w, "  %-9s %8s  %-18s %12s  %-18s %12s %8s\n",
		"verdict", "launches", "chosen", "mean ns", "best", "mean ns", "regret")
	for i, r := range rows {
		if i >= top {
			fmt.Fprintf(w, "  ... %d more\n", len(rows)-top)
			break
		}
		verdict := "ok"
		if r.chosen != r.best {
			verdict = "MISPRED"
		}
		fmt.Fprintf(w, "  %-9s %8d  %-18s %12.0f  %-18s %12.0f %7.1f%%\n",
			verdict, r.launches, r.chosen, r.chosenMeanNS, r.best, r.bestMeanNS, 100*r.regret)
		fmt.Fprintf(w, "            region: %s\n", r.region)
	}
}

// writePathHistogram prints how often each distinct root-to-leaf
// decision path was taken, per site — the "which branches actually
// fire" view of a deployed model.
func writePathHistogram(w io.Writer, recs []flightRecord, top int) {
	counts := map[string]int{}
	var order []string
	for i := range recs {
		r := &recs[i]
		if len(r.Path) == 0 {
			continue
		}
		key := r.siteName() + ":\n      " + strings.Join(r.Path, "\n      ")
		if counts[key] == 0 {
			order = append(order, key)
		}
		counts[key]++
	}
	sort.SliceStable(order, func(i, j int) bool { return counts[order[i]] > counts[order[j]] })
	fmt.Fprintf(w, "\ndecision-path histogram (%d distinct paths):\n", len(order))
	if len(order) == 0 {
		fmt.Fprintln(w, "  (no records carry decision trails)")
		return
	}
	for i, key := range order {
		if i >= top {
			fmt.Fprintf(w, "  ... %d more\n", len(order)-top)
			break
		}
		fmt.Fprintf(w, "  %6dx %s\n", counts[key], key)
	}
}

// runTraceCmd implements `apollo-inspect trace`: validate a Chrome
// trace-event JSON file (as captured from /debug/apollo/trace) and
// summarize it. It exits non-zero on malformed traces, which is what
// the flight smoke test asserts.
func runTraceCmd(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	in := fs.String("in", "", "Chrome trace-event JSON file")
	url := fs.String("url", "", "fetch the trace from a live /debug/apollo/trace endpoint")
	timeout := fs.Duration("timeout", 3*time.Second, "HTTP timeout for -url fetches")
	if err := fs.Parse(args); err != nil {
		return err
	}
	data, err := readInput(*in, *url, *timeout)
	if err != nil {
		return err
	}
	var events []struct {
		Name string  `json:"name"`
		Cat  string  `json:"cat"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
	}
	if err := json.Unmarshal(data, &events); err != nil {
		return fmt.Errorf("not a trace-event JSON array: %w", err)
	}
	cats := map[string]int{}
	for i, e := range events {
		if e.Name == "" || e.Ph != "X" {
			return fmt.Errorf("event %d malformed: name=%q ph=%q (want complete events)", i, e.Name, e.Ph)
		}
		if e.Dur < 0 || e.Ts < 0 {
			return fmt.Errorf("event %d has negative timing: ts=%g dur=%g", i, e.Ts, e.Dur)
		}
		cats[e.Cat]++
	}
	catNames := make([]string, 0, len(cats))
	for c := range cats {
		catNames = append(catNames, c)
	}
	sort.Strings(catNames)
	fmt.Printf("valid chrome trace: %d events", len(events))
	for _, c := range catNames {
		fmt.Printf(", %d %s", cats[c], c)
	}
	fmt.Println()
	return nil
}
