package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"apollo/internal/ctree"
	"apollo/internal/dtree"
)

// syntheticRecords describe one region ("daxpy" at num_indices=1024)
// observed under two variants thanks to exploration: the model keeps
// choosing class 0 (mean 900ns) while the explored class 1 runs in
// 500ns — a misprediction with 80% regret — plus a second region with
// only one variant, which must be skipped as incomparable.
func syntheticRecords() []flightRecord {
	feats := map[string]float64{"num_indices": 1024}
	path := []string{"num_indices (=1024) <= 2048 → left", "leaf"}
	recs := []flightRecord{
		{Site: "daxpy", Policy: 0, Predicted: 0, ObservedNS: 800, Features: feats, Path: path},
		{Site: "daxpy", Policy: 0, Predicted: 0, ObservedNS: 1000, Features: feats, Path: path},
		{Site: "daxpy", Policy: 1, Predicted: 0, Explored: true, ObservedNS: 500, Features: feats, Path: path},
		{Site: "daxpy", Policy: 0, Predicted: 0, ObservedNS: 900,
			Features: map[string]float64{"num_indices": 64},
			Path:     []string{"num_indices (=64) <= 96 → left"}},
	}
	return recs
}

func TestMispredictTable(t *testing.T) {
	rows := mispredictTable(syntheticRecords())
	if len(rows) != 1 {
		t.Fatalf("got %d comparable regions, want 1: %+v", len(rows), rows)
	}
	r := rows[0]
	if r.chosen != "class=0" || r.best != "class=1" {
		t.Errorf("chosen=%q best=%q, want class=0 vs class=1", r.chosen, r.best)
	}
	if r.chosenMeanNS != 900 || r.bestMeanNS != 500 {
		t.Errorf("means %g/%g, want 900/500", r.chosenMeanNS, r.bestMeanNS)
	}
	if r.regret != 0.8 {
		t.Errorf("regret %g, want 0.8", r.regret)
	}
	if r.launches != 3 {
		t.Errorf("launches %d, want 3", r.launches)
	}
	if !strings.Contains(r.region, "num_indices=1024") {
		t.Errorf("region key %q lacks the feature snapshot", r.region)
	}
}

func TestMispredictTableAllAgree(t *testing.T) {
	// When exploration confirms the chosen variant is fastest, the row
	// stays but the verdict is "ok": chosen == best.
	recs := []flightRecord{
		{Site: "s", Policy: 0, ObservedNS: 100, Features: map[string]float64{"n": 1}},
		{Site: "s", Policy: 1, Explored: true, ObservedNS: 400, Features: map[string]float64{"n": 1}},
	}
	rows := mispredictTable(recs)
	if len(rows) != 1 || rows[0].chosen != rows[0].best {
		t.Fatalf("want one agreeing row, got %+v", rows)
	}
}

func TestWriteTablesRender(t *testing.T) {
	var tbl, hist strings.Builder
	recs := syntheticRecords()
	writeMispredictTable(&tbl, recs, 20)
	for _, want := range []string{"MISPRED", "class=0", "class=1", "80.0%", "daxpy num_indices=1024"} {
		if !strings.Contains(tbl.String(), want) {
			t.Errorf("misprediction table missing %q:\n%s", want, tbl.String())
		}
	}
	writePathHistogram(&hist, recs, 20)
	if !strings.Contains(hist.String(), "2 distinct paths") {
		t.Errorf("histogram header wrong:\n%s", hist.String())
	}
	if !strings.Contains(hist.String(), "3x daxpy") || !strings.Contains(hist.String(), "num_indices (=1024) <= 2048 → left") {
		t.Errorf("histogram missing dominant path:\n%s", hist.String())
	}
}

func TestFlightCmdReadsCaptureFile(t *testing.T) {
	capture := `{
	  "format": "apollo-flight-v1",
	  "emitted": 3, "dropped": 0,
	  "records": [
	    {"seq":1,"site":"daxpy","policy":0,"observed_ns":800,"features":{"num_indices":1024},"path":["leaf"]},
	    {"seq":2,"site":"daxpy","policy":1,"explored":true,"observed_ns":500,"features":{"num_indices":1024},"path":["leaf"]}
	  ]
	}`
	path := filepath.Join(t.TempDir(), "capture.json")
	if err := os.WriteFile(path, []byte(capture), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runFlightCmd([]string{"-in", path}); err != nil {
		t.Fatalf("flight subcommand failed: %v", err)
	}
	if err := runFlightCmd([]string{"-in", filepath.Join(t.TempDir(), "missing.json")}); err == nil {
		t.Error("missing capture file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"format":"other"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runFlightCmd([]string{"-in", bad}); err == nil ||
		!strings.Contains(err.Error(), "apollo-flight-v1") {
		t.Errorf("wrong-format capture accepted: %v", err)
	}
	if err := runFlightCmd(nil); err == nil {
		t.Error("no input accepted")
	}
}

// TestDecodeOffsetPaths exercises the offline fallback: a capture whose
// records carry only compact offset trails (no pre-rendered path) must
// get its paths reconstructed from the embedded compiled-tree layout.
func TestDecodeOffsetPaths(t *testing.T) {
	dt := &dtree.Tree{
		Root: &dtree.Node{
			Feature: 0, Threshold: 96,
			Left: &dtree.Node{Feature: -1, Label: 0},
			Right: &dtree.Node{
				Feature: 1, Threshold: 256,
				Left:  &dtree.Node{Feature: -1, Label: 0},
				Right: &dtree.Node{Feature: -1, Label: 1},
			},
		},
		NumFeatures: 2, NumClasses: 2,
	}
	ct, err := ctree.Compile(dt)
	if err != nil {
		t.Fatal(err)
	}
	var offs [8]int32
	_, n := ct.PredictOffsets([]float64{1024, 1024}, offs[:])

	c := flightCapture{
		Format: "apollo-flight-v1",
		Sites: []flightSite{{
			ID: "0x7", Name: "daxpy",
			Features: []string{"num_indices", "trip_count"},
			CTree:    ct.Layout(),
		}},
		Records: []flightRecord{{
			Site: "daxpy", SiteID: "0x7",
			Features:     map[string]float64{"num_indices": 1024, "trip_count": 1024},
			TrailOffsets: append([]int32(nil), offs[:n]...),
		}},
	}
	decodeOffsetPaths(&c)
	want := []string{
		"num_indices (=1024) > 96 → right",
		"trip_count (=1024) > 256 → right",
	}
	got := c.Records[0].Path
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("decoded path %q, want %q", got, want)
	}

	// Records from sites without an embedded layout stay untouched.
	c2 := flightCapture{
		Records: []flightRecord{{SiteID: "0x9", TrailOffsets: []int32{0, -1}}},
	}
	decodeOffsetPaths(&c2)
	if c2.Records[0].Path != nil {
		t.Fatalf("layout-less record grew a path: %q", c2.Records[0].Path)
	}
}

func TestTraceCmdValidates(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, []byte(
		`[{"name":"daxpy","cat":"kernel","ph":"X","ts":0,"dur":10,"pid":1,"tid":0},
		  {"name":"daxpy decision","cat":"decision","ph":"X","ts":0,"dur":1,"pid":1,"tid":0}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runTraceCmd([]string{"-in", good}); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`[{"name":"","ph":"B"}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runTraceCmd([]string{"-in", bad}); err == nil {
		t.Error("malformed trace accepted")
	}
	notjson := filepath.Join(dir, "not.json")
	if err := os.WriteFile(notjson, []byte(`{"oops":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runTraceCmd([]string{"-in", notjson}); err == nil {
		t.Error("non-array trace accepted")
	}
}
