package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"apollo/internal/fleet"
)

// runFleetCmd implements "apollo-inspect fleet": probe every replica's
// health and model list and report whether the fleet has converged —
// same version AND same content ETag for every model on every live
// replica. Exit status is non-zero on divergence or unreachable
// replicas, so smoke scripts can assert convergence with one call.
func runFleetCmd(args []string) error {
	fs := flag.NewFlagSet("apollo-inspect fleet", flag.ContinueOnError)
	replicas := fs.String("replicas", "", "fleet replicas as comma-separated id=url pairs (required)")
	timeout := fs.Duration("timeout", 3*time.Second, "per-replica probe timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	peers, err := fleet.ParsePeers(*replicas)
	if err != nil {
		return err
	}
	if len(peers) == 0 {
		return fmt.Errorf("-replicas is required")
	}
	return inspectFleet(peers, &http.Client{Timeout: *timeout})
}

// replicaModels is one replica's view of the registry.
type replicaModels struct {
	peer   fleet.Peer
	up     bool
	err    error
	models map[string]modelVersion
}

type modelVersion struct {
	Version int    `json:"version"`
	ETag    string `json:"etag"`
}

func inspectFleet(peers []fleet.Peer, hc *http.Client) error {
	views := make([]replicaModels, 0, len(peers))
	for _, p := range peers {
		views = append(views, probeReplica(p, hc))
	}

	// Per-replica status lines first.
	unreachable := 0
	for _, v := range views {
		if !v.up {
			unreachable++
			fmt.Printf("replica %-8s %-24s DOWN (%v)\n", v.peer.ID, v.peer.Base, v.err)
			continue
		}
		fmt.Printf("replica %-8s %-24s up, %d model(s)\n", v.peer.ID, v.peer.Base, len(v.models))
	}

	// Convergence verdict per model name across live replicas.
	names := map[string]bool{}
	for _, v := range views {
		for name := range v.models {
			names[name] = true
		}
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)

	diverged := 0
	for _, name := range sorted {
		var first *modelVersion
		missing := 0
		same := true
		for _, v := range views {
			if !v.up {
				continue
			}
			mv, ok := v.models[name]
			if !ok {
				missing++
				continue
			}
			if first == nil {
				c := mv
				first = &c
			} else if mv.Version != first.Version || mv.ETag != first.ETag {
				same = false
			}
		}
		switch {
		case !same:
			diverged++
			fmt.Printf("model %-28s DIVERGED\n", name)
			for _, v := range views {
				if mv, ok := v.models[name]; v.up && ok {
					fmt.Printf("  %-8s v%-4d %s\n", v.peer.ID, mv.Version, mv.ETag)
				}
			}
		case missing > 0:
			diverged++
			fmt.Printf("model %-28s MISSING on %d live replica(s)\n", name, missing)
		default:
			fmt.Printf("model %-28s converged v%d %s\n", name, first.Version, first.ETag)
		}
	}

	if diverged > 0 || unreachable > 0 {
		return fmt.Errorf("fleet not converged: %d diverged/missing model(s), %d unreachable replica(s)",
			diverged, unreachable)
	}
	fmt.Printf("fleet converged: %d replica(s), %d model(s)\n", len(views), len(sorted))
	return nil
}

func probeReplica(p fleet.Peer, hc *http.Client) replicaModels {
	v := replicaModels{peer: p, models: map[string]modelVersion{}}
	resp, err := hc.Get(p.Base + "/healthz")
	if err != nil {
		v.err = err
		return v
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16)) //apollo:errok best-effort drain so the probe connection can be reused
	resp.Body.Close()                                     //apollo:errok probe body already read and drained; Close failure changes nothing
	if resp.StatusCode != http.StatusOK {
		v.err = fmt.Errorf("healthz: %s", resp.Status)
		return v
	}
	resp, err = hc.Get(p.Base + "/models")
	if err != nil {
		v.err = err
		return v
	}
	defer resp.Body.Close()
	var list struct {
		Models []struct {
			Name string `json:"name"`
			modelVersion
		} `json:"models"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&list); err != nil {
		v.err = fmt.Errorf("decoding model list: %w", err)
		return v
	}
	v.up = true
	for _, m := range list.Models {
		v.models[m.Name] = m.modelVersion
	}
	return v
}
