// Command apollo-inspect examines Apollo artifacts offline: trained
// model JSON files and flight-recorder output from the live debug
// endpoints.
//
//	apollo-inspect -model policy.json            inspect a model
//	apollo-inspect -model policy.json -gen -depth 3
//	apollo-inspect models -dir ./models          compiled-model report:
//	                                             nodes, flat-array bytes,
//	                                             specialization kind
//	apollo-inspect models -url http://127.0.0.1:8080 -verify
//	                                             + differential check of
//	                                             compiled vs interpreted
//	                                             and the live /predict
//	apollo-inspect flight -in capture.json       misprediction table +
//	                                             decision-path histogram
//	apollo-inspect flight -url http://127.0.0.1:9999/debug/apollo/flight
//	apollo-inspect loop -dir ./loopjournal       stitch closed-loop event
//	                                             journals into per-loop
//	                                             timelines + reaction SLOs
//	apollo-inspect trace -in trace.json          validate a Chrome trace
//	apollo-inspect fleet -replicas "r1=http://:8081,r2=http://:8082"
//	                                             per-replica health and
//	                                             model-convergence verdict
package main

import (
	"flag"
	"fmt"
	"os"

	"apollo/internal/codegen"
	"apollo/internal/core"
)

func main() {
	if len(os.Args) > 1 {
		var err error
		switch os.Args[1] {
		case "models":
			err = runModelsCmd(os.Args[2:])
		case "flight":
			err = runFlightCmd(os.Args[2:])
		case "loop":
			err = runLoopCmd(os.Args[2:])
		case "trace":
			err = runTraceCmd(os.Args[2:])
		case "fleet":
			err = runFleetCmd(os.Args[2:])
		default:
			err = runModelCmd(os.Args[1:])
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "apollo-inspect:", err)
			os.Exit(1)
		}
		return
	}
	if err := runModelCmd(nil); err != nil {
		fmt.Fprintln(os.Stderr, "apollo-inspect:", err)
		os.Exit(1)
	}
}

// runModelCmd keeps the original flag-based model inspection as the
// default when no subcommand is given.
func runModelCmd(args []string) error {
	fs := flag.NewFlagSet("apollo-inspect", flag.ContinueOnError)
	model := fs.String("model", "", "model JSON path (required)")
	gen := fs.Bool("gen", false, "print the generated Go decision function")
	depth := fs.Int("depth", 0, "render the tree pruned to this depth (0 = full)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return run(*model, *gen, *depth)
}

func run(path string, gen bool, depth int) error {
	if path == "" {
		return fmt.Errorf("-model is required")
	}
	m, err := core.LoadModel(path)
	if err != nil {
		return err
	}
	tree := m.Tree
	if depth > 0 {
		tree = tree.PruneToDepth(depth)
	}

	fmt.Printf("model:      %s\n", path)
	fmt.Printf("parameter:  %s (%d classes)\n", m.Param, m.Param.NumClasses())
	fmt.Printf("features:   %d (%v)\n", m.Schema.Len(), m.Schema.Names())
	fmt.Printf("tree:       depth %d, %d nodes, %d leaves", tree.Depth(), tree.NumNodes(), tree.NumLeaves())
	if depth > 0 {
		fmt.Printf(" (pruned from depth %d)", m.Tree.Depth())
	}
	fmt.Println()

	names, imps := m.FeatureRanking()
	fmt.Println("\nfeature importance:")
	for i, n := range names {
		if imps[i] == 0 && i >= 5 {
			break
		}
		fmt.Printf("  %2d. %-16s %.3f\n", i+1, n, imps[i])
	}

	fmt.Println("\ndecision tree:")
	fmt.Print(tree.String())

	if gen {
		pruned := &core.Model{Param: m.Param, Schema: m.Schema, Tree: tree}
		fmt.Println("\ngenerated Go decision function:")
		fmt.Print(codegen.Generate(pruned, "tuned", "ApolloBeginForall"))
	}
	return nil
}
