// Command apollo-inspect examines a trained model JSON file: its
// parameter, feature schema, tree structure, feature importances, the
// rendered decision tree, and (optionally) the generated Go decision
// function — the artifacts an application team reviews before deploying
// a model.
//
//	apollo-inspect -model policy.json
//	apollo-inspect -model policy.json -gen -depth 3
package main

import (
	"flag"
	"fmt"
	"os"

	"apollo/internal/codegen"
	"apollo/internal/core"
)

func main() {
	model := flag.String("model", "", "model JSON path (required)")
	gen := flag.Bool("gen", false, "print the generated Go decision function")
	depth := flag.Int("depth", 0, "render the tree pruned to this depth (0 = full)")
	flag.Parse()

	if err := run(*model, *gen, *depth); err != nil {
		fmt.Fprintln(os.Stderr, "apollo-inspect:", err)
		os.Exit(1)
	}
}

func run(path string, gen bool, depth int) error {
	if path == "" {
		return fmt.Errorf("-model is required")
	}
	m, err := core.LoadModel(path)
	if err != nil {
		return err
	}
	tree := m.Tree
	if depth > 0 {
		tree = tree.PruneToDepth(depth)
	}

	fmt.Printf("model:      %s\n", path)
	fmt.Printf("parameter:  %s (%d classes)\n", m.Param, m.Param.NumClasses())
	fmt.Printf("features:   %d (%v)\n", m.Schema.Len(), m.Schema.Names())
	fmt.Printf("tree:       depth %d, %d nodes, %d leaves", tree.Depth(), tree.NumNodes(), tree.NumLeaves())
	if depth > 0 {
		fmt.Printf(" (pruned from depth %d)", m.Tree.Depth())
	}
	fmt.Println()

	names, imps := m.FeatureRanking()
	fmt.Println("\nfeature importance:")
	for i, n := range names {
		if imps[i] == 0 && i >= 5 {
			break
		}
		fmt.Printf("  %2d. %-16s %.3f\n", i+1, n, imps[i])
	}

	fmt.Println("\ndecision tree:")
	fmt.Print(tree.String())

	if gen {
		pruned := &core.Model{Param: m.Param, Schema: m.Schema, Tree: tree}
		fmt.Println("\ngenerated Go decision function:")
		fmt.Print(codegen.Generate(pruned, "tuned", "ApolloBeginForall"))
	}
	return nil
}
