package main

import (
	"path/filepath"
	"testing"

	"apollo/internal/core"
	"apollo/internal/dataset"
	"apollo/internal/features"
)

func savedModel(t *testing.T) string {
	t.Helper()
	schema := features.NewSchema(features.NumIndices)
	frame := dataset.NewFrame(core.RecordColumns(schema)...)
	for _, n := range []int{10, 100, 1000, 10000} {
		frame.AddRow([]float64{float64(n), 0, 0, float64(n) * 10})
		frame.AddRow([]float64{float64(n), 1, 0, 5000 + float64(n)})
	}
	set, err := core.Label(frame, schema, core.ExecutionPolicy)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Train(set, core.TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestInspectRuns(t *testing.T) {
	path := savedModel(t)
	if err := run(path, true, 2); err != nil {
		t.Fatal(err)
	}
	if err := run(path, false, 0); err != nil {
		t.Fatal(err)
	}
}

func TestInspectErrors(t *testing.T) {
	if err := run("", false, 0); err == nil {
		t.Error("missing -model accepted")
	}
	if err := run("/nonexistent/model.json", false, 0); err == nil {
		t.Error("missing file accepted")
	}
}
