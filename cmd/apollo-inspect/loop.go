package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"apollo/internal/looptrace"
)

// runLoopCmd implements `apollo-inspect loop`: stitch the closed-loop
// event journals of any number of processes (replicas, the trainer, the
// tuner) into per-loop causal timelines and the loop-reaction-time
// distribution.
//
//	apollo-inspect loop -dir ./loopjournal           stitch loop-*.jsonl
//	apollo-inspect loop -in loop-traind.jsonl        one journal
//	apollo-inspect loop -url http://127.0.0.1:9999/debug/apollo/loop
//	apollo-inspect loop -dir a,b -json               machine-readable report
//
// -dir and -url accept comma-separated lists, and all three sources
// combine: the stitcher merges every event it is given by wall time.
func runLoopCmd(args []string) error {
	fs := flag.NewFlagSet("loop", flag.ContinueOnError)
	dir := fs.String("dir", "", "journal directory holding loop-*.jsonl files (comma-separated for several)")
	in := fs.String("in", "", "single loop journal file (comma-separated for several)")
	url := fs.String("url", "", "fetch live events from /debug/apollo/loop endpoints (comma-separated for several)")
	jsonOut := fs.Bool("json", false, "emit the stitched apollo-loop-report-v1 JSON instead of the text timeline")
	timeout := fs.Duration("timeout", 3*time.Second, "HTTP timeout for -url fetches")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" && *in == "" && *url == "" {
		return fmt.Errorf("set at least one of -dir, -in, or -url")
	}
	var events []looptrace.EventJSON
	for _, d := range splitList(*dir) {
		evs, err := looptrace.ReadJournalDir(d)
		if err != nil {
			return err
		}
		events = append(events, evs...)
	}
	for _, path := range splitList(*in) {
		evs, err := looptrace.ReadJournal(path)
		if err != nil {
			return err
		}
		events = append(events, evs...)
	}
	for _, u := range splitList(*url) {
		data, err := readInput("", u, *timeout)
		if err != nil {
			return err
		}
		var c looptrace.Capture
		if err := json.Unmarshal(data, &c); err != nil {
			return fmt.Errorf("decoding %s: %w", u, err)
		}
		if c.Format != looptrace.JournalFormatID {
			return fmt.Errorf("%s is not a loop capture (format %q, want %q)",
				u, c.Format, looptrace.JournalFormatID)
		}
		events = append(events, c.Events...)
	}
	rep := looptrace.Stitch(events)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	return rep.WriteTimeline(os.Stdout)
}

// splitList splits a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
