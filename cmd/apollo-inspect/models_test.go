package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"

	"apollo/internal/core"
	"apollo/internal/ctree"
	"apollo/internal/registry"
)

// captureStdout runs f with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	io.Copy(&buf, r)
	return buf.String(), ferr
}

func TestModelsCmdFromFileAndDir(t *testing.T) {
	path := savedModel(t)
	out, err := captureStdout(t, func() error {
		return runModelsCmd([]string{"-model", path, "-verify", "-vectors", "64"})
	})
	if err != nil {
		t.Fatalf("models -model: %v\n%s", err, out)
	}
	for _, want := range []string{"flat bytes", "execution_policy", "compiled == interpreted"} {
		if !strings.Contains(out, want) {
			t.Errorf("models output missing %q:\n%s", want, out)
		}
	}

	// Registry directory source: publish the same model, then report.
	dir := t.TempDir()
	reg, err := registry.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish("policy", m); err != nil {
		t.Fatal(err)
	}
	out, err = captureStdout(t, func() error {
		return runModelsCmd([]string{"-dir", dir, "-verify"})
	})
	if err != nil {
		t.Fatalf("models -dir: %v\n%s", err, out)
	}
	if !strings.Contains(out, "policy") || !strings.Contains(out, "compiled == interpreted") {
		t.Errorf("dir report wrong:\n%s", out)
	}
}

func TestModelsCmdFlagValidation(t *testing.T) {
	if err := runModelsCmd(nil); err == nil {
		t.Error("no source accepted")
	}
	if err := runModelsCmd([]string{"-dir", "x", "-model", "y"}); err == nil {
		t.Error("two sources accepted")
	}
	if err := runModelsCmd([]string{"-model", "/nonexistent.json"}); err == nil {
		t.Error("missing model file accepted")
	}
}

// TestProbeVectorsCoverBoundaries asserts the corpus probes every split
// threshold at and one ULP around the boundary — the vectors where a
// `<=` versus `<` compilation mistake would surface.
func TestProbeVectorsCoverBoundaries(t *testing.T) {
	path := savedModel(t)
	m, err := core.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	probes := probeVectors(m, 16)
	if len(probes) < 16 {
		t.Fatalf("only %d probes", len(probes))
	}
	ct, err := ctree.Compile(m.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if err := verifyCompiled(m, ct, probes); err != nil {
		t.Fatalf("differential verification failed: %v", err)
	}
}
